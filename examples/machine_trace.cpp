// Simulated-machine walkthrough: runs PHF and BA on the discrete-event
// machine model and prints the time/communication story of Section 3 --
// what you pay for PHF's HF-identical partition versus BA's
// communication-free decomposition.
//
//   $ ./machine_trace [log2_processors]
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "core/bounds.hpp"
#include "problems/alpha_dist.hpp"
#include "problems/synthetic.hpp"
#include "sim/par_ba.hpp"
#include "sim/phf.hpp"
#include "sim/trace.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  using namespace lbb;

  const int k = argc > 1 ? std::atoi(argv[1]) : 10;
  if (k < 1 || k > 22) {
    std::cerr << "usage: machine_trace [log2_processors in 1..22]\n";
    return 1;
  }
  const std::int32_t n = 1 << k;
  const double alpha = 0.1;
  problems::SyntheticProblem p(
      /*seed=*/99, problems::AlphaDistribution::uniform(alpha, 0.5));

  std::cout << "Machine model: " << n << " processors, unit bisection/send, "
            << "collectives cost ceil(log2 N) = " << std::ilogb(n) << "\n"
            << "Problem class: 0.1-bisectors (alpha-hat ~ U[0.1, 0.5])\n\n";

  sim::Trace phf_trace;
  sim::Trace ba_trace;
  sim::PhfSimOptions oracle;
  oracle.manager = sim::FreeProcManager::kOracle;
  oracle.trace = &phf_trace;
  sim::PhfSimOptions baprime;
  baprime.manager = sim::FreeProcManager::kBaPrime;

  const auto phf = sim::phf_simulate(p, n, alpha, sim::CostModel{}, oracle);
  const auto phf2 = sim::phf_simulate(p, n, alpha, sim::CostModel{}, baprime);
  const auto ba = sim::ba_simulate(p, n, sim::CostModel{}, {}, &ba_trace);
  const auto bahf = sim::ba_hf_simulate(p, n, alpha, 1.0);

  stats::TextTable table;
  table.set_header({"execution", "time", "msgs", "collectives", "ratio"});
  auto row = [&](const char* name, const auto& r) {
    table.add_row({name, stats::fmt(r.metrics.makespan, 1),
                   stats::fmt_int(r.metrics.messages),
                   stats::fmt_int(r.metrics.collective_ops),
                   stats::fmt(r.partition.ratio(), 3)});
  };
  row("PHF (oracle mgr)", phf);
  row("PHF (BA' mgr)", phf2);
  row("BA", ba);
  row("BA-HF (beta=1)", bahf);
  table.print(std::cout);

  std::cout << "\nPHF detail: phase 1 finished at t="
            << stats::fmt(phf.metrics.phase1_end, 1) << " after "
            << phf.metrics.phase1_bisections << " bisections; phase 2 ran "
            << phf.metrics.phase2_iterations << " synchronized iterations ("
            << phf.metrics.phase2_bisections
            << " bisections; bound: "
            << core::phase2_iteration_bound(alpha) << " iterations)\n";
  std::cout << "\nPHF timeline (first processors; B bisect, s send, r "
               "receive, C collective):\n"
            << phf_trace.render_timeline(12, 68) << "\n";
  std::cout << "BA timeline (no collectives, pure fan-out):\n"
            << ba_trace.render_timeline(12, 68) << "\n";
  std::cout << "sequential HF would need t = "
            << stats::fmt(2.0 * (n - 1), 1)
            << " on this machine -- the parallel variants are "
            << stats::fmt(2.0 * (n - 1) / ba.metrics.makespan, 0)
            << "x (BA) / "
            << stats::fmt(2.0 * (n - 1) / phf.metrics.makespan, 0)
            << "x (PHF) faster.\n"
            << "PHF's partition is bit-identical to sequential HF's "
               "(ratio above), BA trades balance for zero collectives.\n";
  return 0;
}
