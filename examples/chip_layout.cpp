// Domain decomposition of a 2-D cost field ("layout optimization" / CFD
// style, cited by the paper): split a chip-like density map across
// processors by recursive best-cut bisection and visualize the resulting
// rectangles as ASCII art.
//
//   $ ./chip_layout [processors] [grid_size]
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/lbb.hpp"
#include "problems/grid_domain.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  using namespace lbb;

  const std::int32_t procs = argc > 1 ? std::atoi(argv[1]) : 12;
  const std::int32_t size = argc > 2 ? std::atoi(argv[2]) : 96;
  if (procs < 1 || size < 8) {
    std::cerr << "usage: chip_layout [processors>=1] [grid_size>=8]\n";
    return 1;
  }

  const auto field = std::make_shared<const problems::GridField>(
      problems::GridField::random_hotspots(/*seed=*/21, size, size,
                                           /*hotspots=*/7));
  problems::GridProblem root(field);

  std::cout << "Cost field " << size << "x" << size
            << " with 7 hotspots, total cost "
            << stats::fmt(root.weight(), 0) << "\n\n";

  const auto part = core::hf_partition(root, procs);

  stats::TextTable table;
  table.set_header({"proc", "rectangle", "cells", "cost", "cost share"});
  for (const auto& piece : part.pieces) {
    const auto& p = piece.problem;
    table.add_row({stats::fmt_int(piece.processor),
                   std::to_string(p.x0()) + "," + std::to_string(p.y0()) +
                       " .. " + std::to_string(p.x1()) + "," +
                       std::to_string(p.y1()),
                   stats::fmt_int(p.cells()), stats::fmt(piece.weight, 0),
                   stats::fmt(100.0 * piece.weight / part.total_weight, 1) +
                       "%"});
  }
  table.print(std::cout);
  std::cout << "\nbalance ratio: " << stats::fmt(part.ratio(), 3)
            << " (1.0 = perfect; ideal share = "
            << stats::fmt(100.0 / procs, 1) << "%)\n\n";

  // ASCII map: each cell shows the processor owning it (base-36).
  const int step = std::max(1, size / 48);
  std::vector<std::string> canvas(
      static_cast<std::size_t>((size + step - 1) / step),
      std::string(static_cast<std::size_t>((size + step - 1) / step), '?'));
  const char* digits = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMN";
  for (const auto& piece : part.pieces) {
    const auto& p = piece.problem;
    const char c = digits[piece.processor % 50];
    for (int y = p.y0(); y < p.y1(); y += step) {
      for (int x = p.x0(); x < p.x1(); x += step) {
        canvas[static_cast<std::size_t>(y / step)]
              [static_cast<std::size_t>(x / step)] = c;
      }
    }
  }
  for (const auto& line : canvas) std::cout << line << "\n";
  return 0;
}
