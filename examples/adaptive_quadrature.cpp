// Parallel multi-dimensional adaptive quadrature (the paper cites Bonk's
// adaptive quadrature as an application of bisection-based load balancing).
//
// Integrates a sharply peaked 2-D integrand.  The adaptive scheme's work is
// wildly non-uniform across the domain, so a naive uniform domain split
// leaves most processors idle; HF's weight-driven split balances the actual
// number of adaptive boxes per processor.
//
//   $ ./adaptive_quadrature [processors]
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "core/lbb.hpp"
#include "problems/quadrature.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  using namespace lbb;

  const std::int32_t procs = argc > 1 ? std::atoi(argv[1]) : 8;
  if (procs < 1) {
    std::cerr << "usage: adaptive_quadrature [processors>=1]\n";
    return 1;
  }

  // A Gaussian peak: f(x, y) = exp(-((x-0.3)^2 + (y-0.6)^2)/s).
  problems::Integrand f = [](std::span<const double> x) {
    const double dx = x[0] - 0.3;
    const double dy = x[1] - 0.6;
    return std::exp(-(dx * dx + dy * dy) / 1e-2);
  };
  const double lo[2] = {0.0, 0.0};
  const double hi[2] = {1.0, 1.0};
  problems::QuadratureProblem root(
      std::move(f), problems::QuadratureConfig{1e-7, 30}, 2,
      std::span<const double>(lo, 2), std::span<const double>(hi, 2));

  std::cout << "Adaptive quadrature over [0,1]^2, peak at (0.3, 0.6)\n"
            << "total adaptive boxes (== work units): " << root.weight()
            << "\n\n";

  const auto part = core::hf_partition(root, procs);

  stats::TextTable table;
  table.set_header({"proc", "region", "boxes", "integral"});
  double total = 0.0;
  for (const auto& piece : part.pieces) {
    const auto& p = piece.problem;
    const double value = p.integrate();
    total += value;
    table.add_row(
        {stats::fmt_int(piece.processor),
         "[" + stats::fmt(p.lower()[0], 2) + "," + stats::fmt(p.upper()[0], 2) +
             "]x[" + stats::fmt(p.lower()[1], 2) + "," +
             stats::fmt(p.upper()[1], 2) + "]",
         stats::fmt(piece.weight, 0), stats::fmt(value, 6)});
  }
  table.print(std::cout);

  const double exact = 1e-2 * M_PI;  // full Gaussian mass (peak inside box)
  std::cout << "\nsum of per-processor integrals: " << stats::fmt(total, 6)
            << "  (analytic ~ " << stats::fmt(exact, 6) << ")\n"
            << "work balance ratio (max boxes / ideal): "
            << stats::fmt(part.ratio(), 3) << "\n"
            << "a uniform " << procs
            << "-way x-slab split would put nearly all boxes on the slab "
               "containing x = 0.3.\n";
  return 0;
}
