// Heterogeneous cluster (extension): balance a workload onto processors of
// different speeds.  Compares speed-aware BA / rank-matched HF with their
// speed-oblivious originals on a mixed machine (a few fast nodes, many
// slow ones).
//
//   $ ./heterogeneous_cluster [fast_nodes] [slow_nodes] [speed_factor]
#include <cstdlib>
#include <iostream>
#include <vector>

#include "core/hetero.hpp"
#include "core/lbb.hpp"
#include "problems/alpha_dist.hpp"
#include "problems/synthetic.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  using namespace lbb;

  const int fast = argc > 1 ? std::atoi(argv[1]) : 4;
  const int slow = argc > 2 ? std::atoi(argv[2]) : 28;
  const double factor = argc > 3 ? std::atof(argv[3]) : 4.0;
  if (fast < 0 || slow < 0 || fast + slow < 1 || factor <= 0.0) {
    std::cerr << "usage: heterogeneous_cluster [fast>=0] [slow>=0] "
                 "[speed_factor>0]\n";
    return 1;
  }

  std::vector<double> speeds;
  for (int i = 0; i < fast; ++i) speeds.push_back(factor);
  for (int i = 0; i < slow; ++i) speeds.push_back(1.0);
  const auto n = static_cast<std::int32_t>(speeds.size());

  const problems::SyntheticProblem problem(
      2026, problems::AlphaDistribution::uniform(0.1, 0.5));

  std::cout << "Cluster: " << fast << " nodes at speed " << factor << " + "
            << slow << " nodes at speed 1 (" << n << " processors)\n"
            << "quality = realized makespan / ideal makespan "
               "(1.0 = perfect)\n\n";

  const auto ba_aware = core::hetero_ba_partition(problem, speeds);
  const auto ba_plain = core::ba_partition(problem, n);
  const auto hf_aware = core::hetero_hf_partition(problem, speeds);
  const auto hf_plain = core::hf_partition(problem, n);

  stats::TextTable table;
  table.set_header({"algorithm", "speed-aware", "hetero quality"});
  table.add_row({"BA", "yes (capacity split)",
                 stats::fmt(core::hetero_ratio(ba_aware, speeds), 3)});
  table.add_row({"BA", "no",
                 stats::fmt(core::hetero_ratio(ba_plain, speeds), 3)});
  table.add_row({"HF", "yes (rank matching)",
                 stats::fmt(core::hetero_ratio(hf_aware, speeds), 3)});
  table.add_row({"HF", "no (identity assignment)",
                 stats::fmt(core::hetero_ratio(hf_plain, speeds), 3)});
  table.print(std::cout);

  // Where did the weight go?  Show the fast nodes' share under aware BA.
  double fast_share = 0.0;
  for (const auto& piece : ba_aware.pieces) {
    if (piece.processor < fast) fast_share += piece.weight;
  }
  const double fast_capacity =
      fast * factor / (fast * factor + slow * 1.0);
  std::cout << "\nspeed-aware BA put "
            << stats::fmt(100.0 * fast_share, 1) << "% of the weight on the "
            << "fast nodes (their capacity share: "
            << stats::fmt(100.0 * fast_capacity, 1) << "%).\n"
            << "(This generalizes the paper's identical-processor model; "
               "with uniform speeds both\nvariants reduce exactly to the "
               "original algorithms -- asserted in tests.)\n";
  return 0;
}
