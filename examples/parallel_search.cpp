// Parallel backtrack search (the paper's "parts of the search space for an
// optimization problem" application, cf. Karp/Zhang): split the N-Queens
// search tree across processors by repeated bisection, then actually run
// the per-piece searches on a thread pool and verify that the solution
// counts add up.
//
//   $ ./parallel_search [board_size] [processors]
#include <atomic>
#include <cstdlib>
#include <iostream>

#include "core/lbb.hpp"
#include "problems/backtrack.hpp"
#include "runtime/executor.hpp"
#include "runtime/thread_pool.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  using namespace lbb;

  const std::int32_t board = argc > 1 ? std::atoi(argv[1]) : 10;
  const std::int32_t procs = argc > 2 ? std::atoi(argv[2]) : 8;
  if (board < 4 || board > 13 || procs < 1) {
    std::cerr << "usage: parallel_search [board 4..13] [processors>=1]\n";
    return 1;
  }

  problems::BacktrackProblem root(board);
  std::cout << board << "-queens: search tree has " << root.weight()
            << " leaves (dead ends + solutions)\n\n";

  const auto part = core::hf_partition(root, procs);

  stats::TextTable table;
  table.set_header({"proc", "fixed rows", "tree leaves", "solutions"});
  std::atomic<long long> total_solutions{0};

  runtime::ThreadPool pool(static_cast<unsigned>(procs));
  const auto report = runtime::execute_partition(
      part, pool, [&total_solutions](const problems::BacktrackProblem& piece) {
        total_solutions.fetch_add(piece.count_solutions());
      });

  for (const auto& piece : part.pieces) {
    table.add_row({stats::fmt_int(piece.processor),
                   stats::fmt_int(piece.problem.fixed_rows()),
                   stats::fmt(piece.weight, 0),
                   stats::fmt_int(piece.problem.count_solutions())});
  }
  table.print(std::cout);

  std::cout << "\ntotal solutions found in parallel: "
            << total_solutions.load() << "\n"
            << "work balance ratio (max leaves / ideal): "
            << stats::fmt(part.ratio(), 3) << "\n"
            << "realized imbalance on the pool: "
            << stats::fmt(report.imbalance(), 3) << " (wall "
            << stats::fmt(report.wall_seconds * 1e3, 2) << " ms)\n";
  return 0;
}
