// FEM load balancing: the paper's motivating application.
//
// Simulates adaptive recursive substructuring (a graded mesh refined toward
// a singularity), producing an unbalanced FE-tree, then distributes the
// elements over P processors with HF, BA and BA-HF, and finally *executes*
// a mock element assembly on a real thread pool to show the realized
// speedup of the balanced distribution.
//
//   $ ./fem_partition [processors] [elements]
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "core/lbb.hpp"
#include "problems/fe_tree.hpp"
#include "runtime/executor.hpp"
#include "runtime/thread_pool.hpp"
#include "stats/table.hpp"

namespace {

// Mock per-element work: a short numeric kernel per leaf element.
void assemble_elements(const lbb::problems::FeTreeProblem& fragment) {
  volatile double sink = 0.0;
  const auto elements = static_cast<long>(fragment.weight());
  for (long e = 0; e < elements; ++e) {
    double local = 1.0;
    for (int i = 1; i <= 400; ++i) {
      local += 1.0 / (static_cast<double>(i) * i);
    }
    sink = sink + local;
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lbb;

  const std::int32_t procs = argc > 1 ? std::atoi(argv[1]) : 8;
  const std::int32_t elements = argc > 2 ? std::atoi(argv[2]) : 20000;
  if (procs < 1 || elements < procs) {
    std::cerr << "usage: fem_partition [processors>=1] [elements>=procs]\n";
    return 1;
  }

  std::cout << "Adaptive substructuring: refining toward a singularity...\n";
  const auto tree = problems::FeTree::adaptive_refinement(
      /*seed=*/7, elements, /*focus=*/2.5, /*singularity=*/0.3);
  std::cout << "FE-tree: " << tree.leaf_count() << " elements, depth "
            << tree.depth() << " (log2 would be "
            << static_cast<int>(std::log2(elements)) << ")\n\n";

  problems::FeTreeProblem root(tree);
  const auto hf = core::hf_partition(root, procs);
  const auto ba = core::ba_partition(root, procs);
  const auto ba_hf = core::ba_hf_partition(
      root, procs, core::BaHfParams{1.0 / 3.0, 1.0});

  stats::TextTable table;
  table.set_header({"algorithm", "max elements", "ratio",
                    "bound (alpha=1/3)"});
  table.add_row({"HF", stats::fmt(hf.max_weight(), 0),
                 stats::fmt(hf.ratio(), 3),
                 stats::fmt(core::hf_ratio_bound(1.0 / 3.0), 2)});
  table.add_row({"BA", stats::fmt(ba.max_weight(), 0),
                 stats::fmt(ba.ratio(), 3),
                 stats::fmt(core::ba_ratio_bound(1.0 / 3.0, procs), 2)});
  table.add_row({"BA-HF", stats::fmt(ba_hf.max_weight(), 0),
                 stats::fmt(ba_hf.ratio(), 3),
                 stats::fmt(core::ba_hf_ratio_bound(1.0 / 3.0, 1.0, procs),
                            2)});
  table.print(std::cout);

  std::cout << "\nExecuting the element assembly on a thread pool ("
            << procs << " workers)...\n";
  runtime::ThreadPool pool(static_cast<unsigned>(procs));
  const auto report =
      runtime::execute_partition(hf, pool, assemble_elements);
  std::cout << "realized imbalance (max busy / mean busy): "
            << stats::fmt(report.imbalance(), 3) << "  vs partition ratio "
            << stats::fmt(hf.ratio(), 3) << "\n";
  std::cout << "wall time: " << stats::fmt(report.wall_seconds * 1e3, 1)
            << " ms\n";
  if (std::thread::hardware_concurrency() <
      static_cast<unsigned>(procs)) {
    std::cout << "(note: only " << std::thread::hardware_concurrency()
              << " hardware threads available; oversubscription adds "
                 "scheduler noise to the realized figure)\n";
  }
  return 0;
}
