// Million-trial tail study of the max-ratio distribution (experiment E17).
//
// The paper's theorems bound the WORST case; the ratio experiment reports
// means.  This harness runs the batched SoA trial engine at tail scale and
// prints, per (algorithm, N) cell, the p50/p90/p99/p99.9 and observed max
// of the performance ratio next to the proven upper bound -- the empirical
// question being how much daylight the tail leaves below the theorem.
//
// Usage:
//   lbb_bench tail_study                       quick budgeted run
//   lbb_bench tail_study --trials=1048576 --logn=10,14 --algos=ba,hf
//   lbb_bench tail_study --threads=8 --batch=16    same output bytes
//   lbb_bench tail_study --csv=tail.csv --out=BENCH_tail_study.json
//   lbb_bench tail_study --smoke               batched-vs-scalar identity
//                                              gate (widths 1/4/8/16 x
//                                              threads 1/2); exit 1 on any
//                                              divergence
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_cli.hpp"
#include "bench/experiment_registry.hpp"
#include "core/simd/dispatch.hpp"
#include "experiments/tail_study.hpp"
#include "stats/alloc_stats.hpp"
#include "stats/json.hpp"
#include "stats/table.hpp"

namespace {

using lbb::experiments::TailStudyCell;
using lbb::experiments::TailStudyConfig;
using lbb::experiments::TailStudyResult;

TailStudyConfig config_from_cli(const lbb::bench::Cli& cli) {
  TailStudyConfig config;
  config.dist = lbb::problems::AlphaDistribution::uniform(
      cli.get_double("lo", 0.01), cli.get_double("hi", 0.5));
  config.beta = cli.get_double("beta", 1.0);
  config.trials = cli.get_int("trials", config.trials);
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  config.threads = cli.threads();
  config.batch =
      static_cast<std::int32_t>(cli.get_int("batch", config.batch));
  config.bisection_budget = cli.get_int("budget", config.bisection_budget);
  config.hist_max = cli.get_double("hist-max", config.hist_max);
  config.hist_bins =
      static_cast<std::int32_t>(cli.get_int("bins", config.hist_bins));
  config.time_limit_seconds = cli.get_double("time-limit", 0.0);
  if (const auto algos = cli.get_list("algos"); !algos.empty()) {
    config.algos = algos;
  }
  if (const auto logn = cli.get_list("logn"); !logn.empty()) {
    config.log2_n.clear();
    for (const std::string& k : logn) {
      config.log2_n.push_back(static_cast<std::int32_t>(std::stoi(k)));
    }
  }
  return config;
}

/// True when every reported number of the two runs agrees bit-for-bit:
/// the fixed-order RunningStats, the bisection totals, and each integer
/// histogram bin.  This is the engine's determinism contract across
/// --threads and --batch (see experiments/tail_study.hpp).
bool cells_identical(const TailStudyResult& a, const TailStudyResult& b) {
  if (a.cells.size() != b.cells.size()) return false;
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    const TailStudyCell& x = a.cells[i];
    const TailStudyCell& y = b.cells[i];
    if (x.algo != y.algo || x.log2_n != y.log2_n || x.trials != y.trials ||
        x.bisections != y.bisections) {
      return false;
    }
    if (x.ratio.count() != y.ratio.count() ||
        x.ratio.mean() != y.ratio.mean() || x.ratio.min() != y.ratio.min() ||
        x.ratio.max() != y.ratio.max()) {
      return false;
    }
    if (x.tail.count() != y.tail.count() || x.tail.min() != y.tail.min() ||
        x.tail.max() != y.tail.max() || x.tail.bins() != y.tail.bins()) {
      return false;
    }
    for (std::int32_t bin = 0; bin < x.tail.bins(); ++bin) {
      if (x.tail.bin_count(bin) != y.tail.bin_count(bin)) return false;
    }
  }
  return true;
}

/// --smoke: a small study run through the scalar path and then through
/// every batched width and a threaded configuration, each required to be
/// bit-identical to the scalar reference.
int run_smoke() {
  TailStudyConfig base;
  base.trials = 256;
  base.log2_n = {6, 9};
  base.algos = {"ba", "ba_star", "ba_hf", "hf"};
  base.bisection_budget = 0;
  base.hist_bins = 64;
  base.seed = 7;

  TailStudyConfig scalar = base;
  scalar.batch = 1;
  scalar.threads = 1;
  const TailStudyResult reference = lbb::experiments::run_tail_study(scalar);

  int failures = 0;
  for (const std::int32_t batch : {1, 4, 8, 16}) {
    for (const std::int32_t threads : {1, 2}) {
      TailStudyConfig config = base;
      config.batch = batch;
      config.threads = threads;
      const TailStudyResult result = lbb::experiments::run_tail_study(config);
      const bool ok = cells_identical(reference, result);
      std::cout << "tail_study smoke: batch=" << batch
                << " threads=" << threads
                << (ok ? " identical" : " DIVERGED") << "\n";
      if (!ok) ++failures;
    }
  }
  if (failures > 0) {
    std::cerr << "tail_study --smoke: FAILED (" << failures
              << " configuration(s) diverged from the scalar reference)\n";
    return 1;
  }
  // Name the dispatched ISA so check_determinism.sh's LBB_SIMD_FORCE legs
  // can assert the force actually took effect (not just that bits matched).
  std::cout << "tail_study smoke: all batched/threaded runs byte-identical "
               "to scalar (simd = "
            << lbb::core::simd::isa_name(lbb::core::simd::active_isa())
            << ")\n";
  return 0;
}

void write_json(const TailStudyResult& result, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("tail_study: cannot open " + path +
                             " for writing");
  }
  lbb::stats::JsonWriter json(out);
  json.begin_object();
  json.member("benchmark", "tail_study");
  json.member("threads", result.config.threads);
  json.member("batch", result.config.batch);
  json.member("hist_max", result.config.hist_max);
  json.member("hist_bins", result.config.hist_bins);
  json.member("alloc_probe", lbb::stats::alloc_probe_linked());
  // Lets tools/bench_diff.py refuse to compare wall-clock numbers (and
  // only those -- the statistics are machine-independent) across machines
  // or across different dispatched lane-kernel ISAs.
  json.member("hardware_concurrency",
              static_cast<std::int64_t>(std::thread::hardware_concurrency()));
  json.member("simd_isa",
              lbb::core::simd::isa_name(lbb::core::simd::active_isa()));
  json.key("cells");
  json.begin_array();
  for (const TailStudyCell& cell : result.cells) {
    const double bisections_per_sec =
        cell.wall_seconds > 0.0
            ? static_cast<double>(cell.bisections) / cell.wall_seconds
            : 0.0;
    json.begin_object(/*inline_mode=*/true);
    json.member("algo", cell.display);
    json.member("log2_n", cell.log2_n);
    json.member("trials", cell.trials);
    json.member("upper_bound", cell.upper_bound);
    json.member("mean_ratio", cell.ratio.mean());
    json.member("p50", cell.tail.quantile(0.50));
    json.member("p90", cell.tail.quantile(0.90));
    json.member("p99", cell.tail.quantile(0.99));
    json.member("p999", cell.tail.quantile(0.999));
    json.member("max_ratio", cell.ratio.max());
    json.member("wall_seconds", cell.wall_seconds);
    json.member("bisections", cell.bisections);
    json.member("bisections_per_sec", bisections_per_sec);
    json.member("alloc_count", cell.alloc_count);
    json.member("alloc_bytes", cell.alloc_bytes);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  json.finish();
}

}  // namespace

int lbb::bench::run_tail_study(int argc, char** argv) {
  const bench::Cli cli(argc, argv);
  if (cli.flag("smoke")) {
    return run_smoke();
  }

  const TailStudyConfig config = config_from_cli(cli);
  std::cout << "Tail study: alpha-hat ~ " << config.dist.describe()
            << ", beta = " << config.beta << ", trials <= " << config.trials
            << (config.bisection_budget > 0 ? " (budget-capped)" : "")
            << ", batch = " << config.batch << "\n\n";

  const TailStudyResult result = lbb::experiments::run_tail_study(config);

  stats::TextTable table;
  table.set_header({"algo", "logN", "trials", "ub", "mean", "p50", "p90",
                    "p99", "p99.9", "max"});
  std::string last_algo;
  for (const TailStudyCell& cell : result.cells) {
    if (cell.algo != last_algo) {
      table.add_separator();
      last_algo = cell.algo;
    }
    table.add_row({cell.display, std::to_string(cell.log2_n),
                   std::to_string(cell.trials),
                   stats::fmt(cell.upper_bound, 3),
                   stats::fmt(cell.ratio.mean(), 4),
                   stats::fmt(cell.tail.quantile(0.50), 4),
                   stats::fmt(cell.tail.quantile(0.90), 4),
                   stats::fmt(cell.tail.quantile(0.99), 4),
                   stats::fmt(cell.tail.quantile(0.999), 4),
                   stats::fmt(cell.ratio.max(), 4)});
  }
  table.print(std::cout);

  const std::string csv_path = cli.get_string("csv");
  if (!csv_path.empty()) {
    experiments::write_tail_csv(result, csv_path);
    std::cout << "\n(csv written to " << csv_path << ")\n";
  }
  const std::string out_path = cli.get_string("out");
  if (!out_path.empty()) {
    write_json(result, out_path);
    std::cout << "(json written to " << out_path << ")\n";
  }
  return 0;
}
