// Reproduces the Section-4 interval study: behaviour of the observed ratio
// across different alpha-hat supports [lo, hi], including the narrow
// [alpha, 2*alpha] intervals the paper singles out.
//
// Usage: interval_sweep [--full] [--trials=N] [--threads=K]
//
// Expected shapes (paper):
//   * the sample variance is very small except for narrow [alpha, 2 alpha]
//     intervals with small alpha;
//   * HF's average ratio is almost independent of N, except when the
//     interval is very narrow (width < 0.1);
//   * for a fixed interval the three algorithms' ratios differ by no more
//     than about a factor 3.
#include <iostream>

#include "bench/bench_cli.hpp"
#include "bench/experiment_registry.hpp"
#include "experiments/ratio_experiment.hpp"
#include "stats/table.hpp"

int lbb::bench::run_interval_sweep(int argc, char** argv) {
  using namespace lbb;
  const bench::Cli cli(argc, argv);
  struct Interval {
    double lo, hi;
  };
  const std::vector<Interval> intervals = {
      {0.01, 0.5}, {0.1, 0.5}, {0.25, 0.5}, {0.4, 0.5},  // wide-ish
      {0.05, 0.1}, {0.02, 0.04}, {0.2, 0.4},             // [alpha, 2alpha]
      {0.3, 0.35},                                       // narrow, large a
  };
  const std::vector<std::int32_t> log2_n = {6, 10, 14};

  stats::TextTable table;
  table.set_header({"interval", "algo", "avg(2^6)", "avg(2^10)", "avg(2^14)",
                    "stddev(2^14)", "max/min algo-spread(2^14)"});

  for (const Interval& interval : intervals) {
    experiments::RatioExperimentConfig config;
    config.dist =
        problems::AlphaDistribution::uniform(interval.lo, interval.hi);
    config.trials = static_cast<std::int32_t>(cli.get_int("trials", 200));
    config.seed = static_cast<std::uint64_t>(cli.get_int("seed", 11));
    config.threads = cli.threads();
    config.log2_n = log2_n;
    config.algos = {"ba", "ba_hf", "hf"};
    if (!cli.flag("full")) {
      config.bisection_budget = std::int64_t{1} << 22;
    }
    const auto result = experiments::run_ratio_experiment(config);

    double best = 1e300;
    double worst = 0.0;
    for (const auto& algo : config.algos) {
      const double avg = result.cell(algo, 14).ratio.mean();
      best = std::min(best, avg);
      worst = std::max(worst, avg);
    }
    table.add_separator();
    for (const auto& algo : config.algos) {
      table.add_row(
          {config.dist.describe(), result.cell(algo, 6).display,
           stats::fmt(result.cell(algo, 6).ratio.mean(), 3),
           stats::fmt(result.cell(algo, 10).ratio.mean(), 3),
           stats::fmt(result.cell(algo, 14).ratio.mean(), 3),
           stats::fmt(result.cell(algo, 14).ratio.stddev(), 4),
           algo == "hf" ? stats::fmt(worst / best, 2) : ""});
    }
  }
  std::cout << "Interval study: average ratio and spread per alpha-hat "
               "support\n\n";
  table.print(std::cout);
  return 0;
}
