// Reproduces Table 1 of the paper: worst-case upper bounds (ub) and the
// observed minimum / average / maximum performance ratios for
// alpha-hat ~ U[0.01, 0.5], beta = 1.0, over N = 2^5 ... 2^20.
//
// Usage:
//   lbb_bench table1                quick mode (reduced trials for huge N)
//   lbb_bench table1 --full         paper-faithful: 1000 trials everywhere
//   lbb_bench table1 --trials=200 --seed=9 --lo=0.01 --hi=0.5 --beta=1.0
//   lbb_bench table1 --threads=8    trials on 8 workers (same output bytes)
//   lbb_bench table1 --batch=1      scalar kernels (same output bytes)
//   lbb_bench table1 --algos=hf,oblivious:random   any registered names
//   lbb_bench table1 --time-limit=30               abort after 30 seconds
//
// Expected shape (paper, Table 1): observed ratios far below the ub rows;
// HF smallest, BA-HF between, BA/BA* largest; HF's average almost constant
// in N.
#include <iostream>

#include "bench/bench_cli.hpp"
#include "bench/experiment_registry.hpp"
#include "experiments/ratio_experiment.hpp"
#include "stats/table.hpp"

int lbb::bench::run_table1(int argc, char** argv) {
  using namespace lbb;

  const bench::Cli cli(argc, argv);
  experiments::RatioExperimentConfig config;
  config.dist = problems::AlphaDistribution::uniform(
      cli.get_double("lo", 0.01), cli.get_double("hi", 0.5));
  config.beta = cli.get_double("beta", 1.0);
  config.trials = static_cast<std::int32_t>(cli.get_int("trials", 1000));
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  config.threads = cli.threads();
  config.batch =
      static_cast<std::int32_t>(cli.get_int("batch", config.batch));
  config.time_limit_seconds = cli.get_double("time-limit", 0.0);
  if (const auto algos = cli.get_list("algos"); !algos.empty()) {
    config.algos = algos;
  }
  config.log2_n = {5, 8, 11, 14, 17, 20};
  if (cli.flag("full")) {
    config.log2_n = {5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19,
                     20};
    config.bisection_budget = 0;
  } else {
    // Keep the default run short: cap the per-cell work; the sample
    // variance in this model is tiny (see the paper), so means are stable.
    config.bisection_budget = cli.get_int("budget", std::int64_t{1} << 24);
  }

  std::cout << "Table 1: alpha-hat ~ " << config.dist.describe()
            << ", beta = " << config.beta << ", trials <= " << config.trials
            << (config.bisection_budget > 0 ? " (budget-capped)" : "")
            << "\n\n";

  const auto result = experiments::run_ratio_experiment(config);

  stats::TextTable table;
  std::vector<std::string> header = {"algo", "row"};
  for (const std::int32_t k : config.log2_n) {
    header.push_back("logN=" + std::to_string(k));
  }
  table.set_header(std::move(header));

  for (const std::string& algo : config.algos) {
    table.add_separator();
    const std::string& display =
        result.cell(algo, config.log2_n.front()).display;
    auto add = [&](const char* row_name, auto getter) {
      std::vector<std::string> row = {display, row_name};
      for (const std::int32_t k : config.log2_n) {
        row.push_back(stats::fmt(getter(result.cell(algo, k)), 3));
      }
      table.add_row(std::move(row));
    };
    add("ub", [](const experiments::RatioCell& c) { return c.upper_bound; });
    add("min", [](const experiments::RatioCell& c) { return c.ratio.min(); });
    add("avg", [](const experiments::RatioCell& c) { return c.ratio.mean(); });
    add("max", [](const experiments::RatioCell& c) { return c.ratio.max(); });
  }
  table.print(std::cout);

  const std::string csv_path = cli.get_string("csv");
  if (!csv_path.empty()) {
    experiments::write_ratio_csv(result, csv_path);
    std::cout << "\n(csv written to " << csv_path << ")\n";
  }
  std::cout << "\ntrials per cell:";
  for (const std::int32_t k : config.log2_n) {
    std::cout << "  logN=" << k << ":"
              << result.cell(config.algos.front(), k).trials;
  }
  std::cout << "\n";
  return 0;
}
