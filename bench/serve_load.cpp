// Closed-loop load generator for the resident PartitionService
// (src/service/): the paper's algorithms behind a request queue, measured
// the way a serving system is measured -- tail latency and throughput --
// instead of per-run wall time.
//
// Each of --clients generator threads keeps exactly one request in flight
// (closed loop), rotating over --keys distinct problem keys, for
// --requests requests per client.  Every key is warmed once before the
// measured phase, so the steady state exercised here is the memoized
// serving path; misses, batching and admission control are covered by the
// `service` ctest suite and by --smoke below.
//
// Usage: lbb_bench serve_load [--workers=0] [--clients=4] [--requests=200]
//                             [--keys=8] [--logn=12] [--algos=ba,ba_hf,hf]
//                             [--alpha=0.25] [--beta=1.0] [--queue=0]
//                             [--seed=1] [--cache=1]
//                             [--out=BENCH_serve_load.json] [--smoke]
//
// --queue=0 sizes the admission queue to fit the closed loop (2x clients,
// min 16); smaller values exercise rejection under load.  --cache=0 turns
// memoization off, turning the same harness into a compute-saturation
// load test.
//
// --smoke runs a reduced closed loop plus two self-checks and writes no
// JSON: (1) for each algorithm, a cache hit must be byte-identical to the
// miss that filled it AND to a fresh cache-bypassing compute; (2) with the
// allocation probe linked, warm serving must be allocation-free on both
// the caller and the worker side.  tools/check_determinism.sh runs this
// mode.
//
// The JSON mirrors BENCH_par_speedup.json: one experiment per algorithm,
// one inline cell keyed by (algo, log2_n, threads=workers).  Every number
// in a cell flows out of the service through its MetricsSink report
// ("service.p50_ms", "service.partitions_per_sec", ...), so the bench
// sees exactly what any embedder's sink would.  tools/bench_diff.py
// tracks the latency percentiles across reports (p99 regressions flag
// only between same-concurrency machines).
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_cli.hpp"
#include "bench/experiment_registry.hpp"
#include "core/partitioner.hpp"
#include "core/run_context.hpp"
#include "service/partition_service.hpp"
#include "stats/alloc_stats.hpp"
#include "stats/json.hpp"

namespace lbb::bench {
namespace {

struct LoadPlan {
  std::vector<std::string> algos;
  std::int32_t workers = 0;
  std::int32_t clients = 4;
  std::int32_t requests = 200;  ///< per client
  std::int32_t keys = 8;
  std::int32_t logn = 12;
  std::int32_t queue = 0;  ///< 0 = fit the closed loop
  bool cache = true;
  std::uint64_t seed = 1;
  double alpha = 0.25;
  double beta = 1.0;
};

service::RequestSpec key_spec(const LoadPlan& plan, const std::string& algo,
                              std::int32_t key) {
  service::RequestSpec spec;
  spec.algo = algo;
  spec.problem_seed = plan.seed + static_cast<std::uint64_t>(key);
  spec.n = std::int32_t{1} << plan.logn;
  spec.alpha_lo = 0.1;
  spec.alpha_hi = 0.5;
  spec.alpha = plan.alpha;
  spec.beta = plan.beta;
  return spec;
}

service::ServiceConfig service_config(const LoadPlan& plan) {
  service::ServiceConfig cfg;
  cfg.workers = plan.workers;
  cfg.queue_capacity =
      plan.queue > 0 ? plan.queue : std::max(plan.clients * 2, 16);
  cfg.cache_enabled = plan.cache;
  cfg.partitioner_threads = 1;
  return cfg;
}

struct ClientTally {
  std::int64_t ok = 0;
  std::int64_t failed = 0;
  std::int64_t resubmits = 0;  ///< admission-control retries
  std::string first_error;
};

/// One closed-loop client: at most one request in flight, next request
/// issued the moment the previous one completes.  Rejections (possible
/// only with a deliberately undersized --queue) are retried after a
/// yield, so offered load adapts to what admission control accepts.
void client_loop(service::PartitionService& svc,
                 const std::vector<service::RequestSpec>& specs,
                 std::int32_t offset, std::int32_t requests,
                 ClientTally& tally) {
  service::PartitionRequest req;
  for (std::int32_t i = 0; i < requests; ++i) {
    req.spec = specs[static_cast<std::size_t>(offset + i) % specs.size()];
    while (!svc.try_submit(req)) {
      if (req.status() == service::ServiceStatus::kShutdown) {
        ++tally.failed;
        return;
      }
      ++tally.resubmits;
      std::this_thread::yield();
    }
    if (req.wait() == service::ServiceStatus::kOk) {
      ++tally.ok;
    } else {
      ++tally.failed;
      if (tally.first_error.empty()) {
        tally.first_error = std::string(to_string(req.status()));
        if (!req.error_message().empty()) {
          tally.first_error += ": " + req.error_message();
        }
      }
    }
  }
}

struct RecordingSink final : core::MetricsSink {
  std::map<std::string, double> counters;
  void on_counter(std::string_view key, double value) override {
    counters[std::string(key)] = value;
  }
  [[nodiscard]] double at(const std::string& key) const {
    const auto it = counters.find(key);
    return it == counters.end() ? 0.0 : it->second;
  }
};

/// Runs the measured closed loop for one algorithm and reports through the
/// service's MetricsSink.  Returns false (with a message) on any client
/// failure.
bool run_algo_load(const LoadPlan& plan, const std::string& algo,
                   RecordingSink& sink, std::string& error) {
  service::PartitionService svc(service_config(plan));
  std::vector<service::RequestSpec> specs;
  specs.reserve(static_cast<std::size_t>(plan.keys));
  for (std::int32_t k = 0; k < plan.keys; ++k) {
    specs.push_back(key_spec(plan, algo, k));
  }
  // Warm phase: every key computed once, then the stats epoch restarts so
  // percentiles and partitions/sec describe the warm steady state only.
  for (const service::RequestSpec& spec : specs) (void)svc.call(spec);
  svc.reset_stats();

  std::vector<ClientTally> tallies(
      static_cast<std::size_t>(plan.clients));
  {
    std::vector<std::thread> clients;
    clients.reserve(tallies.size());
    for (std::int32_t c = 0; c < plan.clients; ++c) {
      clients.emplace_back([&, c] {
        client_loop(svc, specs, c, plan.requests,
                    tallies[static_cast<std::size_t>(c)]);
      });
    }
    for (std::thread& t : clients) t.join();
  }
  svc.report(sink);

  std::int64_t ok = 0;
  for (const ClientTally& tally : tallies) {
    ok += tally.ok;
    if (!tally.first_error.empty() && error.empty()) {
      error = algo + ": client request failed: " + tally.first_error;
    }
  }
  const std::int64_t expected =
      static_cast<std::int64_t>(plan.clients) * plan.requests;
  if (error.empty() && ok != expected) {
    error = algo + ": served " + std::to_string(ok) + " of " +
            std::to_string(expected) + " requests";
  }
  return error.empty();
}

// ---------------------------------------------------------------------------
// --smoke self-checks

bool smoke_fail(const std::string& what) {
  std::cerr << "serve_load: SMOKE FAILED: " << what << "\n";
  return false;
}

/// Hit / miss / fresh-bypass byte-identity for one algorithm.
bool smoke_identity(const LoadPlan& plan, const std::string& algo) {
  service::ServiceConfig cfg = service_config(plan);
  cfg.workers = 1;
  service::PartitionService svc(cfg);

  service::PartitionRequest miss, hit, fresh;
  miss.spec = hit.spec = fresh.spec = key_spec(plan, algo, 0);
  fresh.bypass_cache = true;

  svc.submit(miss);
  if (miss.wait() != service::ServiceStatus::kOk) {
    return smoke_fail(algo + ": miss failed: " + miss.error_message());
  }
  svc.submit(hit);
  if (hit.wait() != service::ServiceStatus::kOk) {
    return smoke_fail(algo + ": hit failed: " + hit.error_message());
  }
  svc.submit(fresh);
  if (fresh.wait() != service::ServiceStatus::kOk) {
    return smoke_fail(algo + ": bypass failed: " + fresh.error_message());
  }

  if (!hit.served_from_cache() || fresh.served_from_cache()) {
    return smoke_fail(algo + ": hit/bypass cache attribution wrong");
  }
  if (hit.result().get() != miss.result().get()) {
    return smoke_fail(algo + ": hit did not share the cached result");
  }
  if (!(*fresh.result() == *miss.result())) {
    return smoke_fail(algo +
                      ": cache-bypassing recompute diverged from the "
                      "cached result (determinism contract broken)");
  }
  return true;
}

/// Warm serving must be allocation-free on both sides of the queue.
bool smoke_zero_alloc(const LoadPlan& plan) {
  service::ServiceConfig cfg = service_config(plan);
  cfg.workers = 1;
  service::PartitionService svc(cfg);
  service::PartitionRequest req;
  req.spec = key_spec(plan, plan.algos.front(), 0);

  constexpr int kWarm = 8;
  constexpr int kMeasured = 64;
  for (int i = 0; i < kWarm; ++i) {
    svc.submit(req);
    if (req.wait() != service::ServiceStatus::kOk) {
      return smoke_fail("zero-alloc warm-up request failed");
    }
  }
  const service::ServiceStats before = svc.snapshot();
  const stats::AllocStats caller_before = stats::alloc_stats();
  for (int i = 0; i < kMeasured; ++i) {
    svc.submit(req);
    if (req.wait() != service::ServiceStatus::kOk) {
      return smoke_fail("zero-alloc measured request failed");
    }
  }
  const stats::AllocStats caller =
      stats::alloc_stats() - caller_before;
  const service::ServiceStats after = svc.snapshot();

  if (after.cache_hits - before.cache_hits != kMeasured) {
    return smoke_fail("warm phase was not all cache hits");
  }
  if (!stats::alloc_probe_linked()) {
    std::cout << "serve_load smoke: alloc probe not linked; zero-alloc "
                 "check skipped\n";
    return true;
  }
  if (caller.count != 0) {
    return smoke_fail("caller-side warm serving allocated " +
                      std::to_string(caller.count) + " times");
  }
  if (after.alloc_count - before.alloc_count != 0) {
    return smoke_fail(
        "worker-side warm serving allocated " +
        std::to_string(after.alloc_count - before.alloc_count) + " times");
  }
  return true;
}

int run_smoke(LoadPlan plan) {
  plan.workers = plan.workers > 0 ? plan.workers : 2;
  plan.clients = std::min(plan.clients, 2);
  plan.requests = std::min(plan.requests, 50);
  plan.keys = std::min(plan.keys, 4);
  plan.logn = std::min(plan.logn, 8);

  for (const std::string& algo : plan.algos) {
    if (!smoke_identity(plan, algo)) return 1;
  }
  if (!smoke_zero_alloc(plan)) return 1;
  for (const std::string& algo : plan.algos) {
    RecordingSink sink;
    std::string error;
    if (!run_algo_load(plan, algo, sink, error)) return smoke_fail(error), 1;
    const double served = sink.at("service.served_ok");
    const double expected =
        static_cast<double>(plan.clients) * plan.requests;
    if (served != expected) {
      return smoke_fail(algo + ": served_ok=" + std::to_string(served)),
             1;
    }
    if (sink.at("service.p99_ms") < sink.at("service.p50_ms")) {
      return smoke_fail(algo + ": p99 < p50"), 1;
    }
    if (sink.at("service.partitions_per_sec") <= 0.0) {
      return smoke_fail(algo + ": partitions_per_sec not positive"), 1;
    }
  }
  std::cout << "serve_load smoke OK: " << plan.algos.size()
            << " algorithm(s), hit==miss==fresh byte-identical, warm "
               "serving allocation-free, "
            << plan.clients << "x" << plan.requests
            << " closed-loop requests served\n";
  return 0;
}

}  // namespace

int run_serve_load(int argc, char** argv) {
  const Cli cli(argc, argv);
  LoadPlan plan;
  plan.workers = static_cast<std::int32_t>(cli.get_int("workers", 0));
  plan.clients =
      std::max<std::int32_t>(1, static_cast<std::int32_t>(
                                    cli.get_int("clients", 4)));
  plan.requests =
      std::max<std::int32_t>(1, static_cast<std::int32_t>(
                                    cli.get_int("requests", 200)));
  plan.keys = std::max<std::int32_t>(
      1, static_cast<std::int32_t>(cli.get_int("keys", 8)));
  plan.logn = static_cast<std::int32_t>(cli.get_int("logn", 12));
  if (plan.logn < 1 || plan.logn > 24) {
    throw CliError("--logn: expected a value in [1, 24]");
  }
  plan.queue = static_cast<std::int32_t>(cli.get_int("queue", 0));
  plan.cache = cli.get_int("cache", 1) != 0;
  plan.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  plan.alpha = cli.get_double("alpha", 0.25);
  plan.beta = cli.get_double("beta", 1.0);
  plan.algos = cli.get_list("algos");
  if (plan.algos.empty()) plan.algos = {"ba", "ba_hf", "hf"};
  for (const std::string& algo : plan.algos) {
    if (!core::PartitionerRegistry::instance().contains(algo)) {
      throw CliError("--algos: unknown partitioner '" + algo + "'");
    }
  }
  const std::string out_path =
      cli.get_string("out", "BENCH_serve_load.json");

  if (cli.flag("smoke")) return run_smoke(std::move(plan));

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "serve_load: cannot open " << out_path << " for writing\n";
    return 1;
  }

  // Resolve the worker count up front so the JSON records the real value
  // (0 means hardware_concurrency inside the service).
  const std::int32_t resolved_workers = [&] {
    if (plan.workers > 0) return plan.workers;
    const unsigned hw = std::thread::hardware_concurrency();
    return static_cast<std::int32_t>(hw > 0 ? hw : 1u);
  }();

  stats::JsonWriter json(out);
  json.begin_object();
  json.member("benchmark", "serve_load");
  json.member("log2_n", plan.logn);
  json.member("workers", resolved_workers);
  json.member("clients", plan.clients);
  json.member("requests_per_client", plan.requests);
  json.member("keys", plan.keys);
  json.member("queue_capacity", service_config(plan).queue_capacity);
  json.member("cache_enabled", plan.cache);
  json.member("seed", static_cast<std::int64_t>(plan.seed));
  json.member("alpha", plan.alpha);
  json.member("beta", plan.beta);
  json.member("hardware_concurrency",
              static_cast<std::int64_t>(std::thread::hardware_concurrency()));
  json.member("alloc_probe", stats::alloc_probe_linked());
  json.key("experiments");
  json.begin_array();

  for (const std::string& algo : plan.algos) {
    RecordingSink sink;
    std::string error;
    if (!run_algo_load(plan, algo, sink, error)) {
      std::cerr << "serve_load: " << error << "\n";
      return 1;
    }
    const double served = sink.at("service.served_ok");
    json.begin_object();
    json.member("name", algo);
    json.key("cells");
    json.begin_array();
    json.begin_object(/*inline_mode=*/true);
    json.member("algo", algo);
    json.member("log2_n", plan.logn);
    json.member("threads", resolved_workers);
    json.member("p50_ms", sink.at("service.p50_ms"));
    json.member("p95_ms", sink.at("service.p95_ms"));
    json.member("p99_ms", sink.at("service.p99_ms"));
    json.member("partitions_per_sec",
                sink.at("service.partitions_per_sec"));
    json.member("served_ok", served);
    json.member("cache_hit_rate",
                served > 0.0 ? sink.at("service.cache_hits") / served : 0.0);
    json.member("coalesced", sink.at("service.coalesced"));
    json.member("rejected", sink.at("service.rejected"));
    json.member("cache_entries", sink.at("service.cache_entries"));
    json.member("alloc_count", sink.at("service.alloc_count"));
    json.member("alloc_bytes", sink.at("service.alloc_bytes"));
    json.end_object();
    json.end_array();
    json.end_object();
  }
  json.end_array();
  json.end_object();
  json.finish();

  std::cout << "serve_load report written to " << out_path << " ("
            << plan.algos.size() << " algorithm(s), N=2^" << plan.logn
            << ", workers=" << resolved_workers << ", clients="
            << plan.clients << ", hardware_concurrency="
            << std::thread::hardware_concurrency() << ")\n";
  return 0;
}

}  // namespace lbb::bench
