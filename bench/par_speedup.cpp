// Measured-vs-predicted parallel speedup of the work-stealing partitioners.
//
// Runs the typed par:* entry points (runtime/par_partition.hpp) on a
// SyntheticProblem at N = 2^logn across a list of thread counts, and puts
// each measured speedup next to the speedup the simulator predicts for the
// same instance.  The prediction is Brent's bound applied to the bisection
// DAG: with W total bisections and critical path D (both from ba_simulate /
// ba_hf_simulate under a pure-computation cost model, t_bisect = 1 and all
// communication free), T workers need at most W/T + D steps, so
//
//   predicted_speedup(T) = W / (W/T + D).
//
// Usage: lbb_bench par_speedup [--logn=17] [--threads=1,2,4,8]
//                              [--algos=par:ba,par:ba_hf] [--trials=3]
//                              [--seed=1] [--alpha=0.25] [--beta=1.0]
//                              [--grain=0] [--out=BENCH_par_speedup.json]
//                              [--verify]
//
// --verify additionally byte-compares the parallel output (pieces and, at a
// reduced N, the recorded bisection tree) against the sequential kernels at
// every requested thread count and fails loudly on any divergence; the
// determinism harness (tools/check_determinism.sh) runs this mode.
//
// The JSON mirrors BENCH_ratio_experiment.json: one experiment per
// algorithm, one inline cell per thread count.  hardware_concurrency is
// recorded so readers can tell a 1-CPU CI box (speedup ~1 everywhere) from
// a real multicore run; tools/bench_diff.py only compares speedups between
// reports taken on machines with the same concurrency.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_cli.hpp"
#include "bench/experiment_registry.hpp"
#include "core/ba.hpp"
#include "core/ba_hf.hpp"
#include "core/partition.hpp"
#include "core/workspace.hpp"
#include "problems/alpha_dist.hpp"
#include "problems/synthetic.hpp"
#include "runtime/par_partition.hpp"
#include "runtime/par_partitioners.hpp"
#include "sim/cost_model.hpp"
#include "sim/par_ba.hpp"
#include "stats/alloc_stats.hpp"
#include "stats/json.hpp"

namespace lbb::bench {
namespace {

using lbb::core::BaHfParams;
using lbb::core::Partition;
using lbb::core::PartitionOptions;
using lbb::core::TrialWorkspace;
using lbb::problems::AlphaDistribution;
using lbb::problems::SyntheticProblem;

enum class Family { kBa, kBaStar, kBaHf };

struct AlgoSpec {
  std::string name;  ///< registry-style display name ("par:ba")
  Family family;
};

AlgoSpec parse_algo(const std::string& s) {
  if (s == "par:ba" || s == "ba") return {"par:ba", Family::kBa};
  if (s == "par:ba_star" || s == "ba_star") {
    return {"par:ba_star", Family::kBaStar};
  }
  if (s == "par:ba_hf" || s == "ba_hf") return {"par:ba_hf", Family::kBaHf};
  throw CliError("--algos: unknown algorithm '" + s +
                 "' (expected par:ba, par:ba_star, par:ba_hf)");
}

struct Instance {
  std::uint64_t seed;
  double alpha;
  double beta;
  std::int32_t n;
};

SyntheticProblem make_problem(const Instance& inst) {
  return SyntheticProblem(inst.seed, AlphaDistribution::uniform(0.1, 0.5));
}

Partition<SyntheticProblem> run_par(Family family, const Instance& inst,
                                    runtime::WorkStealingPool& pool,
                                    TrialWorkspace<SyntheticProblem>& ws,
                                    const runtime::ParOptions& opt,
                                    runtime::ParStats* stats) {
  switch (family) {
    case Family::kBa:
      return runtime::par_ba_partition(pool, ws, make_problem(inst), inst.n,
                                       opt, stats);
    case Family::kBaStar:
      return runtime::par_ba_star_partition(pool, make_problem(inst), inst.n,
                                            inst.alpha, opt, stats);
    case Family::kBaHf:
      return runtime::par_ba_hf_partition(pool, make_problem(inst), inst.n,
                                          BaHfParams{inst.alpha, inst.beta},
                                          opt, stats);
  }
  throw std::logic_error("run_par: bad family");
}

Partition<SyntheticProblem> run_seq(Family family, const Instance& inst,
                                    TrialWorkspace<SyntheticProblem>& ws,
                                    const PartitionOptions& opt) {
  switch (family) {
    case Family::kBa:
      return core::ba_partition(ws, make_problem(inst), inst.n, opt);
    case Family::kBaStar:
      return core::ba_star_partition(ws, make_problem(inst), inst.n,
                                     inst.alpha, opt);
    case Family::kBaHf:
      return core::ba_hf_partition(ws, make_problem(inst), inst.n,
                                   BaHfParams{inst.alpha, inst.beta}, opt);
  }
  throw std::logic_error("run_seq: bad family");
}

/// Critical path (D) and total work (W) of the instance's bisection DAG, in
/// bisection units: the simulator under a pure-computation cost model.
struct SimBounds {
  double critical_path = 0.0;
  double total_work = 0.0;
};

SimBounds sim_bounds(Family family, const Instance& inst) {
  sim::CostModel cost;
  cost.t_bisect = 1.0;
  cost.t_send = 0.0;
  cost.collective_latency = 0.0;
  SimBounds out;
  switch (family) {
    case Family::kBa: {
      const auto sim = sim::ba_simulate(make_problem(inst), inst.n, cost);
      out.critical_path = sim.metrics.makespan;
      out.total_work = static_cast<double>(sim.partition.bisections);
      return out;
    }
    case Family::kBaStar: {
      const auto sim = sim::ba_star_simulate(make_problem(inst), inst.n,
                                             inst.alpha, cost);
      out.critical_path = sim.metrics.makespan;
      out.total_work = static_cast<double>(sim.partition.bisections);
      return out;
    }
    case Family::kBaHf: {
      const auto sim = sim::ba_hf_simulate(make_problem(inst), inst.n,
                                           inst.alpha, inst.beta, cost);
      out.critical_path = sim.metrics.makespan;
      out.total_work = static_cast<double>(sim.partition.bisections);
      return out;
    }
  }
  throw std::logic_error("sim_bounds: bad family");
}

double brent_speedup(const SimBounds& b, std::int32_t threads) {
  if (b.total_work <= 0.0) return 1.0;
  const double t = b.total_work / static_cast<double>(threads);
  return b.total_work / (t + b.critical_path);
}

/// Exact comparison: a correct parallel run is byte-identical, so any
/// tolerance would only hide bugs.
bool same_partition(const Partition<SyntheticProblem>& a,
                    const Partition<SyntheticProblem>& b,
                    const std::string& what) {
  const auto fail = [&](const char* field) {
    std::cerr << "par_speedup: VERIFY FAILED (" << what << "): " << field
              << " differs from the sequential kernel\n";
    return false;
  };
  if (a.pieces.size() != b.pieces.size()) return fail("piece count");
  if (a.total_weight != b.total_weight) return fail("total_weight");
  if (a.bisections != b.bisections) return fail("bisections");
  if (a.max_depth != b.max_depth) return fail("max_depth");
  for (std::size_t i = 0; i < a.pieces.size(); ++i) {
    const auto& pa = a.pieces[i];
    const auto& pb = b.pieces[i];
    if (pa.processor != pb.processor || pa.weight != pb.weight ||
        pa.depth != pb.depth || pa.node != pb.node) {
      return fail("pieces");
    }
  }
  if (a.tree.size() != b.tree.size()) return fail("tree size");
  for (std::size_t i = 0; i < a.tree.size(); ++i) {
    const auto& na = a.tree.node(static_cast<core::NodeId>(i));
    const auto& nb = b.tree.node(static_cast<core::NodeId>(i));
    if (na.weight != nb.weight || na.parent != nb.parent ||
        na.left != nb.left || na.right != nb.right || na.depth != nb.depth) {
      return fail("tree nodes");
    }
  }
  return true;
}

bool verify_algo(const AlgoSpec& algo, const Instance& inst,
                 const std::vector<std::int32_t>& thread_counts,
                 std::int32_t grain) {
  // Pieces at the full benchmark N; recorded trees at a reduced N (tree
  // comparison is O(N) memory twice over and the stitch logic has no
  // N-dependent branches beyond what 2^12 already exercises).
  Instance small = inst;
  small.n = std::min<std::int32_t>(inst.n, 1 << 12);
  for (const std::int32_t t : thread_counts) {
    auto& pool = runtime::shared_pool(t);
    runtime::ParOptions popt;
    popt.grain = grain;
    TrialWorkspace<SyntheticProblem> seq_ws;
    TrialWorkspace<SyntheticProblem> par_ws;
    {
      const auto par = run_par(algo.family, inst, pool, par_ws, popt, nullptr);
      const auto seq = run_seq(algo.family, inst, seq_ws, {});
      if (!same_partition(par, seq,
                          algo.name + " threads=" + std::to_string(t))) {
        return false;
      }
    }
    popt.partition.record_tree = true;
    const auto par = run_par(algo.family, small, pool, par_ws, popt, nullptr);
    const auto seq = run_seq(algo.family, small, seq_ws, {true});
    if (!same_partition(par, seq,
                        algo.name + " tree threads=" + std::to_string(t))) {
      return false;
    }
  }
  return true;
}

}  // namespace

int run_par_speedup(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto logn = static_cast<std::int32_t>(cli.get_int("logn", 17));
  if (logn < 1 || logn > 24) {
    throw CliError("--logn: expected a value in [1, 24]");
  }
  Instance inst;
  inst.n = std::int32_t{1} << logn;
  inst.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  inst.alpha = cli.get_double("alpha", 0.25);
  inst.beta = cli.get_double("beta", 1.0);
  const auto trials = static_cast<int>(cli.get_int("trials", 3));
  const auto grain = static_cast<std::int32_t>(cli.get_int("grain", 0));
  const std::string out_path =
      cli.get_string("out", "BENCH_par_speedup.json");

  std::vector<std::int32_t> thread_counts;
  for (const std::string& s : cli.get_list("threads")) {
    char* end = nullptr;
    const long t = std::strtol(s.c_str(), &end, 10);
    if (s.empty() || end != s.c_str() + s.size() || t < 1) {
      throw CliError("--threads: expected positive integers, got '" + s + "'");
    }
    thread_counts.push_back(static_cast<std::int32_t>(t));
  }
  if (thread_counts.empty()) thread_counts = {1, 2, 4, 8};
  // Speedup is relative to the 1-thread run of the same runtime, so make
  // sure it exists even when the user asked e.g. --threads=4,8.
  if (std::find(thread_counts.begin(), thread_counts.end(), 1) ==
      thread_counts.end()) {
    thread_counts.insert(thread_counts.begin(), 1);
  }
  std::sort(thread_counts.begin(), thread_counts.end());
  thread_counts.erase(
      std::unique(thread_counts.begin(), thread_counts.end()),
      thread_counts.end());
  const std::int32_t max_threads = thread_counts.back();

  std::vector<AlgoSpec> algos;
  auto algo_names = cli.get_list("algos");
  if (algo_names.empty()) algo_names = {"par:ba", "par:ba_hf"};
  for (const std::string& s : algo_names) algos.push_back(parse_algo(s));

  if (cli.flag("verify")) {
    for (const AlgoSpec& algo : algos) {
      if (!verify_algo(algo, inst, thread_counts, grain)) return 1;
    }
    std::cout << "par_speedup verify OK: " << algos.size()
              << " algorithm(s) x threads {";
    for (std::size_t i = 0; i < thread_counts.size(); ++i) {
      std::cout << (i ? "," : "") << thread_counts[i];
    }
    std::cout << "} byte-identical to sequential at N=2^" << logn << "\n";
    return 0;
  }

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "par_speedup: cannot open " << out_path << " for writing\n";
    return 1;
  }
  stats::JsonWriter json(out);
  json.begin_object();
  json.member("benchmark", "par_speedup");
  json.member("log2_n", logn);
  json.member("trials", static_cast<std::int64_t>(trials));
  json.member("seed", static_cast<std::int64_t>(inst.seed));
  json.member("alpha", inst.alpha);
  json.member("beta", inst.beta);
  json.member("grain", grain);
  json.member("hardware_concurrency",
              static_cast<std::int64_t>(std::thread::hardware_concurrency()));
  json.member("alloc_probe", stats::alloc_probe_linked());
  json.key("threads");
  json.begin_array(/*inline_mode=*/true);
  for (const std::int32_t t : thread_counts) json.value(t);
  json.end_array();
  json.key("experiments");
  json.begin_array();

  for (const AlgoSpec& algo : algos) {
    const SimBounds bounds = sim_bounds(algo.family, inst);

    // Sequential-kernel reference time: how much the parallel runtime costs
    // at T=1 relative to the plain recursion it must reproduce.
    TrialWorkspace<SyntheticProblem> seq_ws;
    double seq_wall = 0.0;
    for (int t = 0; t < std::max(trials, 1) + 1; ++t) {
      const auto start = std::chrono::steady_clock::now();
      auto part = run_seq(algo.family, inst, seq_ws, {});
      const double wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      seq_ws.recycle(std::move(part));
      seq_ws.reset();
      if (t == 0) continue;  // warm-up
      seq_wall = (seq_wall == 0.0) ? wall : std::min(seq_wall, wall);
    }

    json.begin_object();
    json.member("name", algo.name);
    json.member("sim_critical_path", bounds.critical_path);
    json.member("sim_total_work", bounds.total_work);
    json.member("seq_wall_seconds", seq_wall);
    json.key("cells");
    json.begin_array();

    double wall_one = 0.0;
    for (const std::int32_t t : thread_counts) {
      auto& pool = runtime::shared_pool(t);
      runtime::ParOptions popt;
      popt.grain = grain;
      TrialWorkspace<SyntheticProblem> ws;
      runtime::ParStats stats;
      double wall = 0.0;
      for (int trial = 0; trial < std::max(trials, 1) + 1; ++trial) {
        const auto start = std::chrono::steady_clock::now();
        auto part = run_par(algo.family, inst, pool, ws, popt, &stats);
        const double w = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
        if (algo.family == Family::kBa) {
          ws.recycle(std::move(part));
          ws.reset();
        }
        if (trial == 0) continue;  // warm-up (sizes pools and workspaces)
        wall = (wall == 0.0) ? w : std::min(wall, w);
      }
      if (t == 1) wall_one = wall;
      const double speedup = (wall > 0.0 && wall_one > 0.0)
                                 ? wall_one / wall
                                 : 1.0;
      json.begin_object(/*inline_mode=*/true);
      json.member("algo", algo.name);
      json.member("log2_n", logn);
      json.member("threads", t);
      json.member("wall_seconds", wall);
      json.member("speedup", speedup);
      json.member("predicted_speedup", brent_speedup(bounds, t));
      json.member("par_grain", stats.grain);
      json.member("par_spawns", stats.spawns);
      json.member("par_steals", stats.steals);
      json.member("par_idle_ns", stats.idle_ns);
      json.member("alloc_count", stats.alloc_count);
      json.member("is_max_threads", t == max_threads);
      json.end_object();
    }
    json.end_array();
    json.end_object();
  }
  json.end_array();
  json.end_object();
  json.finish();

  std::cout << "par_speedup report written to " << out_path << " (N=2^"
            << logn << ", threads <= " << max_threads
            << ", hardware_concurrency = "
            << std::thread::hardware_concurrency() << ")\n";
  return 0;
}

}  // namespace lbb::bench
