// Reproduces the Section-4 threshold study: influence of BA-HF's parameter
// beta on the average performance ratio for alpha-hat ~ U[0.1, 0.5].
//
// Usage: beta_sweep [--full] [--trials=N] [--lo=0.1 --hi=0.5] [--threads=K]
//
// Expected shape (paper): "the improvement of the average ratio was
// approximately 10% when beta increased from 1.0 to 2.0 and another 5% when
// beta = 3.0" -- diminishing returns with growing beta, approaching HF's
// ratio from above; the worst-case bound (Theorem 8) shrinks toward
// HF's r_alpha as well.
#include <iostream>

#include "bench/bench_cli.hpp"
#include "bench/experiment_registry.hpp"
#include "core/bounds.hpp"
#include "experiments/ratio_experiment.hpp"
#include "stats/table.hpp"

int lbb::bench::run_beta_sweep(int argc, char** argv) {
  using namespace lbb;
  const bench::Cli cli(argc, argv);
  const double lo = cli.get_double("lo", 0.1);
  const double hi = cli.get_double("hi", 0.5);
  const std::vector<double> betas = {0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0};
  const std::vector<std::int32_t> log2_n = {8, 12, 16};

  experiments::RatioExperimentConfig base;
  base.dist = problems::AlphaDistribution::uniform(lo, hi);
  base.trials = static_cast<std::int32_t>(cli.get_int("trials", 300));
  base.seed = static_cast<std::uint64_t>(cli.get_int("seed", 5));
  base.threads = cli.threads();
  base.log2_n = log2_n;
  if (!cli.flag("full")) {
    base.bisection_budget = std::int64_t{1} << 23;
  }

  std::cout << "BA-HF threshold study: alpha-hat ~ " << base.dist.describe()
            << "\n\n";

  // HF reference row (beta-independent).
  auto hf_config = base;
  hf_config.algos = {"hf"};
  const auto hf = experiments::run_ratio_experiment(hf_config);

  stats::TextTable table;
  std::vector<std::string> header = {"beta", "ub(2^16)"};
  for (const auto k : log2_n) {
    header.push_back("avg logN=" + std::to_string(k));
  }
  header.push_back("vs beta=1");
  table.set_header(std::move(header));

  double avg_at_beta1 = 0.0;
  std::vector<std::vector<double>> rows;
  for (const double beta : betas) {
    auto config = base;
    config.beta = beta;
    config.algos = {"ba_hf"};
    const auto result = experiments::run_ratio_experiment(config);
    std::vector<double> row;
    for (const auto k : log2_n) {
      row.push_back(result.cell("ba_hf", k).ratio.mean());
    }
    if (beta == 1.0) avg_at_beta1 = row.back();
    rows.push_back(std::move(row));
  }
  for (std::size_t i = 0; i < betas.size(); ++i) {
    std::vector<std::string> cells = {
        stats::fmt(betas[i], 1),
        stats::fmt(core::ba_hf_ratio_bound(lo, betas[i], 1 << 16), 2)};
    for (const double r : rows[i]) cells.push_back(stats::fmt(r, 3));
    cells.push_back(
        stats::fmt(100.0 * (1.0 - rows[i].back() / avg_at_beta1), 1) + "%");
    table.add_row(std::move(cells));
  }
  {
    std::vector<std::string> cells = {"HF", stats::fmt(
        core::hf_ratio_bound(lo), 2)};
    for (const auto k : log2_n) {
      cells.push_back(stats::fmt(hf.cell("hf", k).ratio.mean(), 3));
    }
    cells.push_back("(lower limit)");
    table.add_separator();
    table.add_row(std::move(cells));
  }
  table.print(std::cout);
  std::cout << "\n'vs beta=1' is the relative improvement of the "
               "logN=16 average over beta = 1.0.\n";
  return 0;
}
