// Google-benchmark microbenchmarks of the simulation layer: cost of a full
// PHF/BA simulation per machine size, event-queue throughput, and the
// message-level collectives.
#include <benchmark/benchmark.h>

#include "bench/experiment_registry.hpp"

#include <vector>

#include "net/collectives.hpp"
#include "problems/alpha_dist.hpp"
#include "problems/synthetic.hpp"
#include "sim/event_queue.hpp"
#include "sim/par_ba.hpp"
#include "sim/phf.hpp"

namespace {

using lbb::problems::AlphaDistribution;
using lbb::problems::SyntheticProblem;

void BM_PhfSimulate(benchmark::State& state) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  const SyntheticProblem p(1, AlphaDistribution::uniform(0.1, 0.5));
  for (auto _ : state) {
    auto r = lbb::sim::phf_simulate(p, n, 0.1);
    benchmark::DoNotOptimize(r.metrics.makespan);
  }
  state.SetItemsProcessed(state.iterations() * (n - 1));
}

void BM_BaSimulate(benchmark::State& state) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  const SyntheticProblem p(1, AlphaDistribution::uniform(0.1, 0.5));
  for (auto _ : state) {
    auto r = lbb::sim::ba_simulate(p, n);
    benchmark::DoNotOptimize(r.metrics.makespan);
  }
  state.SetItemsProcessed(state.iterations() * (n - 1));
}

void BM_EventQueue(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    lbb::sim::EventQueue<std::int32_t> q;
    for (std::size_t i = 0; i < n; ++i) {
      q.push(static_cast<double>((i * 2654435761u) % 1000),
             static_cast<std::int32_t>(i));
    }
    double sum = 0.0;
    while (!q.empty()) sum += q.pop().time;
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n));
}

void BM_NetBroadcast(benchmark::State& state) {
  std::vector<double> v(static_cast<std::size_t>(state.range(0)), 1.0);
  for (auto _ : state) {
    auto s = lbb::net::broadcast(v, 0);
    benchmark::DoNotOptimize(s.rounds);
  }
}

void BM_NetPrefixSum(benchmark::State& state) {
  std::vector<double> v(static_cast<std::size_t>(state.range(0)), 1.0);
  for (auto _ : state) {
    auto s = lbb::net::prefix_sum(v);
    benchmark::DoNotOptimize(s.rounds);
  }
}

void BM_NetBitonicSort(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<lbb::net::KeyId> base(n);
  for (std::size_t i = 0; i < n; ++i) {
    base[i] = lbb::net::KeyId{
        static_cast<double>((i * 2654435761u) % 997),
        static_cast<std::int32_t>(i)};
  }
  for (auto _ : state) {
    auto items = base;
    auto s = lbb::net::bitonic_sort_desc(items);
    benchmark::DoNotOptimize(s.rounds);
  }
}

/// Registers this file's benchmarks with google-benchmark.  Called by
/// run_micro_sim() so `lbb_bench micro_sim` runs exactly this set even
/// though the other micro suite is linked into the same binary.
void register_micro_sim_benchmarks() {
  benchmark::RegisterBenchmark("BM_PhfSimulate", BM_PhfSimulate)
      ->RangeMultiplier(8)
      ->Range(64, 1 << 13);
  benchmark::RegisterBenchmark("BM_BaSimulate", BM_BaSimulate)
      ->RangeMultiplier(8)
      ->Range(64, 1 << 13);
  benchmark::RegisterBenchmark("BM_EventQueue", BM_EventQueue)
      ->Arg(1 << 10)
      ->Arg(1 << 14);
  benchmark::RegisterBenchmark("BM_NetBroadcast", BM_NetBroadcast)
      ->Arg(1 << 10)
      ->Arg(1 << 16);
  benchmark::RegisterBenchmark("BM_NetPrefixSum", BM_NetPrefixSum)
      ->Arg(1 << 10)
      ->Arg(1 << 16);
  benchmark::RegisterBenchmark("BM_NetBitonicSort", BM_NetBitonicSort)
      ->Arg(1 << 10)
      ->Arg(1 << 13);
}

}  // namespace

int lbb::bench::run_micro_sim(int argc, char** argv) {
  register_micro_sim_benchmarks();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
