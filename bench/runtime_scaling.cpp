// Reproduces the running-time / communication claims of Section 3 and the
// comparison table implicit in Section 5:
//
//   * sequential HF needs Theta(N) time;
//   * PHF, BA, BA-HF all run in O(log N) for fixed alpha (Theorems 3/7/8);
//   * PHF needs global communication in every phase-2 iteration and a
//     costly free-processor manager; BA needs none at all.
//
// Usage: runtime_scaling [--trials=N] [--lo=0.1 --hi=0.5] [--beta=1.0]
//                        [--collective=log|const|sqrt]
#include <iostream>
#include <string>

#include "bench/bench_cli.hpp"
#include "bench/experiment_registry.hpp"
#include "experiments/timing_experiment.hpp"
#include "stats/table.hpp"

int lbb::bench::run_runtime_scaling(int argc, char** argv) {
  using namespace lbb;
  using experiments::ParAlgo;

  const bench::Cli cli(argc, argv);
  experiments::TimingExperimentConfig config;
  config.dist = problems::AlphaDistribution::uniform(
      cli.get_double("lo", 0.1), cli.get_double("hi", 0.5));
  config.beta = cli.get_double("beta", 1.0);
  config.trials = static_cast<std::int32_t>(cli.get_int("trials", 20));
  config.log2_n = {5, 8, 11, 14, 17};

  std::cout << "Simulated parallel time and communication, alpha-hat ~ "
            << config.dist.describe()
            << " (t_bisect = t_send = 1, collectives ~ log2 N)\n\n";

  const auto result = experiments::run_timing_experiment(config);

  stats::TextTable table;
  std::vector<std::string> header = {"algo", "metric"};
  for (const auto k : config.log2_n) {
    header.push_back("logN=" + std::to_string(k));
  }
  table.set_header(std::move(header));

  for (const ParAlgo algo : config.algos) {
    table.add_separator();
    auto add = [&](const char* metric, auto getter) {
      std::vector<std::string> row = {experiments::par_algo_name(algo),
                                      metric};
      for (const auto k : config.log2_n) {
        row.push_back(stats::fmt(getter(result.cell(algo, k)), 1));
      }
      table.add_row(std::move(row));
    };
    add("time", [](const experiments::TimingCell& c) {
      return c.makespan.mean();
    });
    add("messages", [](const experiments::TimingCell& c) {
      return c.messages.mean();
    });
    add("collectives", [](const experiments::TimingCell& c) {
      return c.collective_ops.mean();
    });
    if (algo == ParAlgo::kPHFOracle || algo == ParAlgo::kPHFBaPrime) {
      add("phase2 iters", [](const experiments::TimingCell& c) {
        return c.phase2_iterations.mean();
      });
    }
  }
  table.print(std::cout);

  // Scaling fit: time(2^17)/time(2^5) -- ~1 means flat, ~log ratio for
  // logarithmic algorithms, 2^12 for the sequential baseline.
  std::cout << "\ntime growth factor from N=2^5 to N=2^17 "
               "(linear scaling would be 4096x):\n";
  for (const ParAlgo algo : config.algos) {
    const double t5 = result.cell(algo, 5).makespan.mean();
    const double t17 = result.cell(algo, 17).makespan.mean();
    std::cout << "  " << experiments::par_algo_name(algo) << ": "
              << stats::fmt(t17 / t5, 1) << "x\n";
  }
  return 0;
}
