// Ablation: what does weight information buy?
//
// Compares the paper's weight-aware algorithms (HF, BA) against
// weight-oblivious baselines (level-order, LIFO, random victim) that
// perform the same N-1 bisections but pick the victim without looking at
// weights (related work treats weights as unknown -- "alpha-splitting").
//
// Expected shape: HF's average ratio is constant in N; the oblivious
// strategies degrade with N (BFS mildly, random worse, DFS
// catastrophically), because without weights nothing stops the heavy
// branch from being starved.
//
// Usage: ablation_oblivious [--trials=N]
#include <iostream>

#include "bench/bench_cli.hpp"
#include "bench/experiment_registry.hpp"
#include "core/hf.hpp"
#include "core/ba.hpp"
#include "core/oblivious.hpp"
#include "problems/alpha_dist.hpp"
#include "problems/synthetic.hpp"
#include "stats/rng.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"

int lbb::bench::run_ablation_oblivious(int argc, char** argv) {
  using namespace lbb;

  const bench::Cli cli(argc, argv);
  const auto trials = static_cast<std::int32_t>(cli.get_int("trials", 100));
  const auto dist = problems::AlphaDistribution::uniform(0.1, 0.5);
  const std::vector<std::int32_t> log2_n = {4, 6, 8, 10, 12};

  std::cout << "Weight-information ablation: alpha-hat ~ " << dist.describe()
            << ", " << trials << " trials, average ratio\n\n";

  stats::TextTable table;
  std::vector<std::string> header = {"strategy"};
  for (const auto k : log2_n) header.push_back("logN=" + std::to_string(k));
  table.set_header(std::move(header));

  auto sweep = [&](const std::string& name, auto run) {
    std::vector<std::string> row = {name};
    for (const auto k : log2_n) {
      const std::int32_t n = 1 << k;
      stats::RunningStats acc;
      for (std::int32_t t = 0; t < trials; ++t) {
        problems::SyntheticProblem p(
            stats::mix64(17, static_cast<std::uint64_t>(t)), dist);
        acc.add(run(p, n, static_cast<std::uint64_t>(t)));
      }
      row.push_back(stats::fmt(acc.mean(), 2));
    }
    table.add_row(std::move(row));
  };

  sweep("HF (weight-aware)",
        [](const problems::SyntheticProblem& p, std::int32_t n,
           std::uint64_t) { return core::hf_partition(p, n).ratio(); });
  sweep("BA (weight-aware)",
        [](const problems::SyntheticProblem& p, std::int32_t n,
           std::uint64_t) { return core::ba_partition(p, n).ratio(); });
  for (const auto strategy : {core::ObliviousStrategy::kBreadthFirst,
                              core::ObliviousStrategy::kRandom,
                              core::ObliviousStrategy::kDepthFirst}) {
    sweep(core::oblivious_strategy_name(strategy),
          [strategy](const problems::SyntheticProblem& p, std::int32_t n,
                     std::uint64_t seed) {
            return core::oblivious_partition(p, n, strategy, seed).ratio();
          });
  }
  table.print(std::cout);
  std::cout << "\nHF stays flat; every oblivious strategy degrades with N "
               "-- the weights are what keep the balance bounded.\n";
  return 0;
}
