// Fault-injection sweep: the simulated machine degraded along the fault
// axes of sim/fault_model.hpp (message loss, extra latency, slow
// processors, unresponsive probe targets).  The headline claim the sweep
// verifies at every point: faults stretch the makespan and add retries,
// re-sends and backoff time, but the partition stays byte-identical to the
// ideal machine's -- the load-balancing result is fault-oblivious even
// though the execution is not.
//
// Usage: fault_sweep [--logn=10] [--trials=5] [--alpha=0.1]
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_cli.hpp"
#include "bench/experiment_registry.hpp"
#include "problems/alpha_dist.hpp"
#include "problems/synthetic.hpp"
#include "sim/fault_model.hpp"
#include "sim/phf.hpp"
#include "stats/rng.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"

namespace {

struct Profile {
  const char* name;
  lbb::sim::FaultConfig faults;
};

std::vector<Profile> profiles() {
  std::vector<Profile> out;
  out.push_back({"ideal", {}});
  {
    lbb::sim::FaultConfig f;
    f.message_loss_rate = 0.1;
    out.push_back({"loss 10%", f});
  }
  {
    lbb::sim::FaultConfig f;
    f.message_delay_rate = 0.3;
    out.push_back({"delay 30%", f});
  }
  {
    lbb::sim::FaultConfig f;
    f.slow_proc_fraction = 0.25;
    out.push_back({"slow 25%", f});
  }
  {
    lbb::sim::FaultConfig f;
    f.unresponsive_rate = 0.3;
    out.push_back({"unresp 30%", f});
  }
  {
    lbb::sim::FaultConfig f;
    f.message_loss_rate = 0.1;
    f.message_delay_rate = 0.3;
    f.slow_proc_fraction = 0.25;
    f.unresponsive_rate = 0.3;
    out.push_back({"all of it", f});
  }
  return out;
}

}  // namespace

int lbb::bench::run_fault_sweep(int argc, char** argv) {
  using namespace lbb;

  const bench::Cli cli(argc, argv);
  const auto logn = static_cast<std::int32_t>(cli.get_int("logn", 10));
  const auto trials = static_cast<std::int32_t>(cli.get_int("trials", 5));
  const double alpha = cli.get_double("alpha", 0.1);
  const std::int32_t n = 1 << logn;
  const auto dist = problems::AlphaDistribution::uniform(alpha, 0.5);

  struct Manager {
    const char* name;
    sim::FreeProcManager manager;
  };
  const Manager managers[] = {
      {"oracle", sim::FreeProcManager::kOracle},
      {"BA'", sim::FreeProcManager::kBaPrime},
      {"probe", sim::FreeProcManager::kRandomProbe},
  };

  std::cout << "Fault-injection sweep, PHF on N = " << n << ", alpha-hat ~ "
            << dist.describe() << ", " << trials << " trials (means)\n\n";

  stats::TextTable table;
  table.set_header({"faults", "manager", "makespan", "retries", "lost",
                    "delayed", "backoff", "partition"});
  for (const Profile& profile : profiles()) {
    for (const Manager& mgr : managers) {
      stats::RunningStats makespan, retries, lost, delayed, backoff;
      bool identical = true;
      for (std::int32_t t = 0; t < trials; ++t) {
        problems::SyntheticProblem p(
            stats::mix64(77, static_cast<std::uint64_t>(t)), dist);
        sim::PhfSimOptions ideal;
        ideal.manager = mgr.manager;
        sim::PhfSimOptions degraded = ideal;
        degraded.faults = profile.faults;
        degraded.faults.seed = static_cast<std::uint64_t>(t + 1);
        const auto clean = sim::phf_simulate(p, n, alpha, {}, ideal);
        const auto run = sim::phf_simulate(p, n, alpha, {}, degraded);
        makespan.add(run.metrics.makespan);
        retries.add(static_cast<double>(run.metrics.retries));
        lost.add(static_cast<double>(run.metrics.lost_messages));
        delayed.add(static_cast<double>(run.metrics.delayed_messages));
        backoff.add(run.metrics.backoff_time);
        if (clean.partition.sorted_weights() !=
            run.partition.sorted_weights()) {
          identical = false;
        }
        for (std::size_t i = 0; i < clean.partition.pieces.size(); ++i) {
          if (clean.partition.pieces[i].processor !=
              run.partition.pieces[i].processor) {
            identical = false;
          }
        }
      }
      table.add_row({profile.name, mgr.name, stats::fmt(makespan.mean(), 1),
                     stats::fmt(retries.mean(), 1), stats::fmt(lost.mean(), 1),
                     stats::fmt(delayed.mean(), 1),
                     stats::fmt(backoff.mean(), 1),
                     identical ? "identical" : "DIVERGED"});
    }
  }
  table.print(std::cout);
  std::cout << "\nEvery row must read \"identical\": the fault layer "
               "degrades time and communication only, never the computed "
               "partition (see docs/ALGORITHMS.md).\n";
  return 0;
}
