// Tiny argv parser shared by the lbb_bench experiment harnesses.
//
// Conventions: options are --name=value, bare flags are --name; --full
// switches a bench from its quick default configuration to the
// paper-faithful one (1000 trials for every N up to 2^20); --threads=K
// runs Monte-Carlo trials on K worker threads (0 = one per hardware
// thread) with results identical to --threads=1.
//
// Malformed input (positional arguments, non-numeric values where a
// number is required) raises CliError; the lbb_bench driver catches it,
// prints the message to stderr, and exits with status 2.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace lbb::bench {

/// Bad command-line input (exit code 2 at the driver level).
class CliError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Parsed command line: --key=value pairs and bare flags.
class Cli {
 public:
  Cli(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string_view arg(argv[i]);
      if (!arg.starts_with("--")) {
        throw CliError("unknown positional argument: " + std::string(arg));
      }
      arg.remove_prefix(2);
      const auto eq = arg.find('=');
      if (eq == std::string_view::npos) {
        flags_.emplace_back(arg);
      } else {
        keys_.emplace_back(arg.substr(0, eq));
        values_.emplace_back(arg.substr(eq + 1));
      }
    }
  }

  [[nodiscard]] bool flag(std::string_view name) const {
    for (const std::string& f : flags_) {
      if (f == name) return true;
    }
    return false;
  }

  /// Integer option.  The whole value must parse ("--trials=abc",
  /// "--trials=", and "--trials=12x" all raise CliError -- no silent 0).
  [[nodiscard]] std::int64_t get_int(std::string_view name,
                                     std::int64_t fallback) const {
    const std::string* v = find(name);
    if (v == nullptr) return fallback;
    char* end = nullptr;
    const std::int64_t parsed = std::strtoll(v->c_str(), &end, 10);
    if (v->empty() || end != v->c_str() + v->size()) {
      throw CliError("--" + std::string(name) + ": expected an integer, got '" +
                     *v + "'");
    }
    return parsed;
  }

  /// Floating-point option; same strictness as get_int.
  [[nodiscard]] double get_double(std::string_view name,
                                  double fallback) const {
    const std::string* v = find(name);
    if (v == nullptr) return fallback;
    char* end = nullptr;
    const double parsed = std::strtod(v->c_str(), &end);
    if (v->empty() || end != v->c_str() + v->size()) {
      throw CliError("--" + std::string(name) + ": expected a number, got '" +
                     *v + "'");
    }
    return parsed;
  }

  [[nodiscard]] std::string get_string(std::string_view name,
                                       std::string fallback = "") const {
    const std::string* v = find(name);
    return v ? *v : fallback;
  }

  /// Comma-separated list option ("--algos=ba,hf"); empty when absent.
  [[nodiscard]] std::vector<std::string> get_list(std::string_view name) const {
    std::vector<std::string> out;
    const std::string* v = find(name);
    if (v == nullptr) return out;
    std::string_view rest(*v);
    while (true) {
      const auto comma = rest.find(',');
      if (!rest.substr(0, comma).empty()) {
        out.emplace_back(rest.substr(0, comma));
      }
      if (comma == std::string_view::npos) break;
      rest.remove_prefix(comma + 1);
    }
    return out;
  }

  /// The --threads option, for the experiment engines: absent -> fallback
  /// (default 1 = sequential); --threads=0 -> one per hardware thread;
  /// --threads=K -> exactly K.  The experiment engines guarantee results
  /// that are byte-identical for every value.
  [[nodiscard]] std::int32_t threads(std::int32_t fallback = 1) const {
    const auto t = get_int("threads", fallback);
    if (t == 0) {
      return static_cast<std::int32_t>(
          std::max(1u, std::thread::hardware_concurrency()));
    }
    return static_cast<std::int32_t>(std::max<std::int64_t>(t, 1));
  }

 private:
  [[nodiscard]] const std::string* find(std::string_view name) const {
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      if (keys_[i] == name) return &values_[i];
    }
    return nullptr;
  }

  std::vector<std::string> flags_;
  std::vector<std::string> keys_;
  std::vector<std::string> values_;
};

}  // namespace lbb::bench
