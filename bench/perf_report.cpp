// Machine-readable performance report for the parallel experiment engine.
//
// Runs two pinned ratio experiments (the Table-1 distribution U[0.01, 0.5]
// and the Figure-5 distribution U[0.1, 0.5]) on a reduced grid and writes
// per-cell wall time, bisection counts and throughput to a JSON file, so CI
// and PRs can track the hot-path kernels and thread scaling over time.
//
// Usage: lbb_bench perf_report [--out=BENCH_ratio_experiment.json]
//                              [--threads=K] [--trials=N]
//
// The statistics in the report are byte-identical for every --threads value
// (see src/experiments/ratio_experiment.hpp); only the wall times change.
#include <fstream>
#include <iostream>
#include <vector>

#include "bench/bench_cli.hpp"
#include "bench/experiment_registry.hpp"
#include "experiments/ratio_experiment.hpp"
#include "stats/alloc_stats.hpp"
#include "stats/json.hpp"

int lbb::bench::run_perf_report(int argc, char** argv) {
  using namespace lbb;

  const bench::Cli cli(argc, argv);
  const std::string out_path =
      cli.get_string("out").empty() ? "BENCH_ratio_experiment.json"
                                    : cli.get_string("out");
  const std::int32_t threads = cli.threads();
  const auto trials = static_cast<std::int32_t>(cli.get_int("trials", 200));

  struct Pinned {
    const char* name;
    double lo, hi;
  };
  const std::vector<Pinned> pinned = {
      {"table1_U[0.01,0.5]", 0.01, 0.5},
      {"fig5_U[0.1,0.5]", 0.1, 0.5},
  };

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "perf_report: cannot open " << out_path << " for writing\n";
    return 1;
  }
  stats::JsonWriter json(out);
  json.begin_object();
  json.member("benchmark", "ratio_experiment");
  json.member("threads", threads);
  json.member("trials", trials);
  // lbb_bench links the interposing allocation probe, so the alloc_* cell
  // members below are live; they read 0 in a binary without the probe.
  json.member("alloc_probe", stats::alloc_probe_linked());
  json.key("experiments");
  json.begin_array();

  for (const Pinned& pin : pinned) {
    experiments::RatioExperimentConfig config;
    config.dist = problems::AlphaDistribution::uniform(pin.lo, pin.hi);
    config.trials = trials;
    config.seed = 1;
    config.threads = threads;
    config.log2_n = {6, 10, 14};
    config.algos = {"ba", "ba_hf", "hf"};
    config.bisection_budget = std::int64_t{1} << 22;

    const auto result = experiments::run_ratio_experiment(config);

    json.begin_object();
    json.member("name", pin.name);
    json.member("alpha_lo", pin.lo);
    json.member("alpha_hi", pin.hi);
    json.key("cells");
    json.begin_array();
    for (const auto& cell : result.cells) {
      const double bisections_per_sec =
          cell.wall_seconds > 0.0
              ? static_cast<double>(cell.bisections) / cell.wall_seconds
              : 0.0;
      json.begin_object(/*inline_mode=*/true);
      json.member("algo", cell.display);
      json.member("log2_n", cell.log2_n);
      json.member("trials", cell.trials);
      const double allocs_per_bisection =
          cell.bisections > 0
              ? static_cast<double>(cell.alloc_count) /
                    static_cast<double>(cell.bisections)
              : 0.0;
      json.member("wall_seconds", cell.wall_seconds);
      json.member("bisections", cell.bisections);
      json.member("bisections_per_sec", bisections_per_sec);
      json.member("mean_ratio", cell.ratio.mean());
      json.member("alloc_count", cell.alloc_count);
      json.member("alloc_bytes", cell.alloc_bytes);
      json.member("allocs_per_bisection", allocs_per_bisection);
      json.end_object();
    }
    json.end_array();
    json.end_object();
  }
  json.end_array();
  json.end_object();
  json.finish();

  std::cout << "perf report written to " << out_path << " (threads = "
            << threads << ", trials <= " << trials << ")\n";
  return 0;
}
