// Machine-readable performance report for the parallel experiment engine.
//
// Runs two pinned ratio experiments (the Table-1 distribution U[0.01, 0.5]
// and the Figure-5 distribution U[0.1, 0.5]) on a reduced grid and writes
// per-cell wall time, bisection counts and throughput to a JSON file, so CI
// and PRs can track the hot-path kernels and thread scaling over time.
//
// Each cell is measured THREE ways -- through the batched SoA kernels with
// the runtime-dispatched SIMD lane kernels active (the production default),
// through the batched kernels with the lane kernels forced to scalar, and
// through the scalar batch=1 path -- and the report carries the throughputs
// plus their ratios (batch_speedup, simd_speedup).  All runs must agree
// bit-for-bit on the statistics (the batched engine's core contract);
// perf_report exits nonzero if they ever diverge, so every perf run doubles
// as an identity check.  When the dispatched ISA is already scalar (portable
// build or non-AVX CPU) the forced-scalar run is skipped and simd_speedup
// is exactly 1.0; bench_diff.py additionally refuses to judge simd_speedup
// across reports with different "simd_isa".
//
// Usage: lbb_bench perf_report [--out=BENCH_ratio_experiment.json]
//                              [--threads=K] [--trials=N] [--batch=B]
//
// The statistics in the report are byte-identical for every --threads and
// --batch value (see src/experiments/ratio_experiment.hpp); only the wall
// times change.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "bench/bench_cli.hpp"
#include "bench/experiment_registry.hpp"
#include "core/simd/dispatch.hpp"
#include "experiments/batch_trials.hpp"
#include "experiments/ratio_experiment.hpp"
#include "stats/alloc_stats.hpp"
#include "stats/json.hpp"

int lbb::bench::run_perf_report(int argc, char** argv) {
  using namespace lbb;

  const bench::Cli cli(argc, argv);
  const std::string out_path =
      cli.get_string("out").empty() ? "BENCH_ratio_experiment.json"
                                    : cli.get_string("out");
  const std::int32_t threads = cli.threads();
  const auto trials = static_cast<std::int32_t>(cli.get_int("trials", 200));
  const auto batch = static_cast<std::int32_t>(
      cli.get_int("batch", experiments::kDefaultTrialBatch));

  struct Pinned {
    const char* name;
    double lo, hi;
  };
  const std::vector<Pinned> pinned = {
      {"table1_U[0.01,0.5]", 0.01, 0.5},
      {"fig5_U[0.1,0.5]", 0.1, 0.5},
  };

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "perf_report: cannot open " << out_path << " for writing\n";
    return 1;
  }
  stats::JsonWriter json(out);
  json.begin_object();
  json.member("benchmark", "ratio_experiment");
  json.member("threads", threads);
  json.member("trials", trials);
  json.member("batch", batch);
  // lbb_bench links the interposing allocation probe, so the alloc_* cell
  // members below are live; they read 0 in a binary without the probe.
  json.member("alloc_probe", stats::alloc_probe_linked());
  // Same-hardware guard for tools/bench_diff.py: batch_speedup and
  // simd_speedup compare wall-clock rates, so they are only judged between
  // matching machines running the same dispatched ISA.
  json.member("hardware_concurrency",
              static_cast<std::int64_t>(std::thread::hardware_concurrency()));
  const core::simd::Isa isa = core::simd::active_isa();
  json.member("simd_isa", core::simd::isa_name(isa));
  json.key("experiments");
  json.begin_array();

  bool identical = true;
  for (const Pinned& pin : pinned) {
    experiments::RatioExperimentConfig config;
    config.dist = problems::AlphaDistribution::uniform(pin.lo, pin.hi);
    config.trials = trials;
    config.seed = 1;
    config.threads = threads;
    config.log2_n = {6, 10, 14};
    config.algos = {"ba", "ba_star", "ba_hf", "hf"};
    config.bisection_budget = std::int64_t{1} << 22;

    config.batch = batch;
    const auto result = experiments::run_ratio_experiment(config);
    // Same batched grid with the lane kernels pinned to scalar: the only
    // difference from `result` may be wall time.  Skipped (aliased to
    // `result`) when the dispatcher already selected scalar -- rerunning
    // would measure noise and report it as simd_speedup.
    experiments::RatioExperimentResult simd_off;
    const bool have_simd = isa != core::simd::Isa::kScalar;
    if (have_simd) {
      core::simd::ScopedForceIsa force(core::simd::Isa::kScalar);
      simd_off = experiments::run_ratio_experiment(config);
    } else {
      simd_off = result;
    }
    config.batch = 1;
    const auto scalar = experiments::run_ratio_experiment(config);

    json.begin_object();
    json.member("name", pin.name);
    json.member("alpha_lo", pin.lo);
    json.member("alpha_hi", pin.hi);
    json.key("cells");
    json.begin_array();
    for (std::size_t i = 0; i < result.cells.size(); ++i) {
      const auto& cell = result.cells[i];
      const auto& scell = scalar.cells[i];
      const auto& vcell = simd_off.cells[i];
      // Batched-vs-scalar identity: the statistics must agree exactly.
      if (cell.ratio.mean() != scell.ratio.mean() ||
          cell.ratio.max() != scell.ratio.max() ||
          cell.bisections != scell.bisections) {
        std::cerr << "perf_report: batched and scalar statistics DIVERGED in "
                  << pin.name << " " << cell.algo << " n=2^" << cell.log2_n
                  << "\n";
        identical = false;
      }
      // SIMD-on vs SIMD-off identity: the vectorized lane kernels must not
      // move a single bit either.
      if (cell.ratio.mean() != vcell.ratio.mean() ||
          cell.ratio.max() != vcell.ratio.max() ||
          cell.bisections != vcell.bisections) {
        std::cerr << "perf_report: simd-on and simd-off statistics DIVERGED "
                  << "in " << pin.name << " " << cell.algo << " n=2^"
                  << cell.log2_n << "\n";
        identical = false;
      }
      const double bisections_per_sec =
          cell.wall_seconds > 0.0
              ? static_cast<double>(cell.bisections) / cell.wall_seconds
              : 0.0;
      const double scalar_bisections_per_sec =
          scell.wall_seconds > 0.0
              ? static_cast<double>(scell.bisections) / scell.wall_seconds
              : 0.0;
      json.begin_object(/*inline_mode=*/true);
      json.member("algo", cell.display);
      json.member("log2_n", cell.log2_n);
      json.member("trials", cell.trials);
      const double allocs_per_bisection =
          cell.bisections > 0
              ? static_cast<double>(cell.alloc_count) /
                    static_cast<double>(cell.bisections)
              : 0.0;
      json.member("wall_seconds", cell.wall_seconds);
      json.member("bisections", cell.bisections);
      json.member("bisections_per_sec", bisections_per_sec);
      json.member("scalar_bisections_per_sec", scalar_bisections_per_sec);
      json.member("batch_speedup",
                  scalar_bisections_per_sec > 0.0
                      ? bisections_per_sec / scalar_bisections_per_sec
                      : 0.0);
      const double simd_off_bisections_per_sec =
          vcell.wall_seconds > 0.0
              ? static_cast<double>(vcell.bisections) / vcell.wall_seconds
              : 0.0;
      json.member("simd_off_bisections_per_sec", simd_off_bisections_per_sec);
      json.member("simd_speedup",
                  have_simd && simd_off_bisections_per_sec > 0.0
                      ? bisections_per_sec / simd_off_bisections_per_sec
                      : 1.0);
      json.member("mean_ratio", cell.ratio.mean());
      json.member("alloc_count", cell.alloc_count);
      json.member("alloc_bytes", cell.alloc_bytes);
      json.member("allocs_per_bisection", allocs_per_bisection);
      json.end_object();
    }
    json.end_array();
    json.end_object();
  }
  json.end_array();
  json.end_object();
  json.finish();

  if (!identical) {
    std::cerr << "perf_report: FAILED batched-vs-scalar identity\n";
    return 1;
  }
  std::cout << "perf report written to " << out_path << " (threads = "
            << threads << ", trials <= " << trials << ", batch = " << batch
            << ", simd = " << core::simd::isa_name(isa) << ")\n";
  return 0;
}
