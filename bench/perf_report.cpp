// Machine-readable performance report for the parallel experiment engine.
//
// Runs two pinned ratio experiments (the Table-1 distribution U[0.01, 0.5]
// and the Figure-5 distribution U[0.1, 0.5]) on a reduced grid and writes
// per-cell wall time, bisection counts and throughput to a JSON file, so CI
// and PRs can track the hot-path kernels and thread scaling over time.
//
// Usage: perf_report [--out=BENCH_ratio_experiment.json] [--threads=K]
//                    [--trials=N]
//
// The statistics in the report are byte-identical for every --threads value
// (see src/experiments/ratio_experiment.hpp); only the wall times change.
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <vector>

#include "bench/bench_cli.hpp"
#include "experiments/ratio_experiment.hpp"

namespace {

std::string json_double(double v) {
  std::ostringstream out;
  out << std::setprecision(17) << v;
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lbb;
  using experiments::Algo;

  const bench::Cli cli(argc, argv);
  const std::string out_path =
      cli.get_string("out").empty() ? "BENCH_ratio_experiment.json"
                                    : cli.get_string("out");
  const std::int32_t threads = cli.threads();
  const auto trials = static_cast<std::int32_t>(cli.get_int("trials", 200));

  struct Pinned {
    const char* name;
    double lo, hi;
  };
  const std::vector<Pinned> pinned = {
      {"table1_U[0.01,0.5]", 0.01, 0.5},
      {"fig5_U[0.1,0.5]", 0.1, 0.5},
  };

  std::ostringstream json;
  json << "{\n";
  json << "  \"benchmark\": \"ratio_experiment\",\n";
  json << "  \"threads\": " << threads << ",\n";
  json << "  \"trials\": " << trials << ",\n";
  json << "  \"experiments\": [\n";

  for (std::size_t e = 0; e < pinned.size(); ++e) {
    experiments::RatioExperimentConfig config;
    config.dist =
        problems::AlphaDistribution::uniform(pinned[e].lo, pinned[e].hi);
    config.trials = trials;
    config.seed = 1;
    config.threads = threads;
    config.log2_n = {6, 10, 14};
    config.algos = {Algo::kBA, Algo::kBAHF, Algo::kHF};
    config.bisection_budget = std::int64_t{1} << 22;

    const auto result = experiments::run_ratio_experiment(config);

    json << "    {\n";
    json << "      \"name\": \"" << pinned[e].name << "\",\n";
    json << "      \"alpha_lo\": " << json_double(pinned[e].lo) << ",\n";
    json << "      \"alpha_hi\": " << json_double(pinned[e].hi) << ",\n";
    json << "      \"cells\": [\n";
    for (std::size_t c = 0; c < result.cells.size(); ++c) {
      const auto& cell = result.cells[c];
      const double bisections_per_sec =
          cell.wall_seconds > 0.0
              ? static_cast<double>(cell.bisections) / cell.wall_seconds
              : 0.0;
      json << "        {\"algo\": \"" << experiments::algo_name(cell.algo)
           << "\", \"log2_n\": " << cell.log2_n
           << ", \"trials\": " << cell.trials
           << ", \"wall_seconds\": " << json_double(cell.wall_seconds)
           << ", \"bisections\": " << cell.bisections
           << ", \"bisections_per_sec\": " << json_double(bisections_per_sec)
           << ", \"mean_ratio\": " << json_double(cell.ratio.mean()) << "}"
           << (c + 1 < result.cells.size() ? "," : "") << "\n";
    }
    json << "      ]\n";
    json << "    }" << (e + 1 < pinned.size() ? "," : "") << "\n";
  }
  json << "  ]\n";
  json << "}\n";

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "perf_report: cannot open " << out_path << " for writing\n";
    return 1;
  }
  out << json.str();
  std::cout << "perf report written to " << out_path << " (threads = "
            << threads << ", trials <= " << trials << ")\n";
  return 0;
}
