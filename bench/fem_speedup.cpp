// FEM speedup study (motivated by the companion paper [1], which reports
// "the speed-up achieved by incorporating dynamic load balancing using
// bisections" in the authors' FEM solver): for graded FE-trees, the
// achievable solver speedup on P processors is P / ratio(P); compare
// bisection-based balancing (HF, BA) against a naive equal-element-count
// *static* split that ignores the tree structure (modeled here by an
// oblivious level-order split, which cannot follow the grading).
//
// Usage: fem_speedup [--elements=20000] [--focus=2.5] [--trials=5]
#include <iostream>

#include "bench/bench_cli.hpp"
#include "bench/experiment_registry.hpp"
#include "core/lbb.hpp"
#include "core/oblivious.hpp"
#include "problems/fe_tree.hpp"
#include "stats/rng.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"

int lbb::bench::run_fem_speedup(int argc, char** argv) {
  using namespace lbb;

  const bench::Cli cli(argc, argv);
  const auto elements =
      static_cast<std::int32_t>(cli.get_int("elements", 20000));
  const double focus = cli.get_double("focus", 2.5);
  const auto trials = static_cast<std::int32_t>(cli.get_int("trials", 5));

  std::cout << "FEM speedup: graded meshes with " << elements
            << " elements (focus " << focus << "), " << trials
            << " meshes; entries are achievable speedups P/ratio\n\n";

  stats::TextTable table;
  table.set_header({"P", "HF", "BA", "level-order split", "ideal"});
  for (const std::int32_t procs : {4, 8, 16, 32, 64}) {
    stats::RunningStats hf, ba, naive;
    for (std::int32_t t = 0; t < trials; ++t) {
      const auto tree = problems::FeTree::adaptive_refinement(
          stats::mix64(91, static_cast<std::uint64_t>(t)), elements, focus);
      problems::FeTreeProblem root(tree);
      hf.add(procs / core::hf_partition(root, procs).ratio());
      ba.add(procs / core::ba_partition(root, procs).ratio());
      naive.add(procs /
                core::oblivious_partition(
                    root, procs, core::ObliviousStrategy::kBreadthFirst)
                    .ratio());
    }
    table.add_row({stats::fmt_int(procs), stats::fmt(hf.mean(), 1),
                   stats::fmt(ba.mean(), 1), stats::fmt(naive.mean(), 1),
                   stats::fmt_int(procs)});
  }
  table.print(std::cout);
  std::cout << "\nweight-driven bisection keeps the speedup near P; the "
               "structure-oblivious split saturates because the graded "
               "mesh concentrates elements in a few subtrees.\n";
  return 0;
}
