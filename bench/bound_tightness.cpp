// Bound-tightness study (ablation): how close do adversarial instances get
// to the worst-case bounds of Theorems 2, 7, 8?
//
// The most adversarial instance within a class of alpha-bisectors is the
// point-mass: every bisection splits exactly (alpha, 1-alpha).  For each
// alpha we report the maximum observed ratio over N = 2..N_max for that
// instance, as a fraction of the theoretical bound -- i.e. how much of the
// bound adversarial inputs can actually realize.
//
// Usage: bound_tightness [--nmax=2048]
#include <algorithm>
#include <iostream>

#include "bench/bench_cli.hpp"
#include "bench/experiment_registry.hpp"
#include "core/lbb.hpp"
#include "problems/alpha_dist.hpp"
#include "problems/synthetic.hpp"
#include "stats/table.hpp"

int lbb::bench::run_bound_tightness(int argc, char** argv) {
  using namespace lbb;

  const bench::Cli cli(argc, argv);
  const auto n_max = static_cast<std::int32_t>(cli.get_int("nmax", 2048));

  std::cout << "Adversarial point-mass instances (every split exactly "
               "(alpha, 1-alpha)), worst ratio over N = 2.." << n_max
            << "\n\n";

  stats::TextTable table;
  table.set_header({"alpha", "HF worst", "HF bound", "HF tight%",
                    "BA worst", "BA bound", "BA tight%", "BA-HF worst",
                    "BA-HF bound(b=1)"});

  for (const double alpha :
       {0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 1.0 / 3.0, 0.4, 0.45, 0.5}) {
    const problems::SyntheticProblem p(
        7, problems::AlphaDistribution::point(alpha));
    double hf_worst = 0.0;
    double ba_worst = 0.0;
    double bahf_worst = 0.0;
    double ba_bound = 0.0;
    double bahf_bound = 0.0;
    for (std::int32_t n = 2; n <= n_max;
         n = std::max(n + 1, n + n / 8)) {
      hf_worst = std::max(hf_worst, core::hf_partition(p, n).ratio());
      ba_worst = std::max(ba_worst, core::ba_partition(p, n).ratio());
      bahf_worst = std::max(
          bahf_worst,
          core::ba_hf_partition(p, n, core::BaHfParams{alpha, 1.0}).ratio());
      ba_bound = std::max(ba_bound, core::ba_ratio_bound(alpha, n));
      bahf_bound =
          std::max(bahf_bound, core::ba_hf_ratio_bound(alpha, 1.0, n));
    }
    const double hf_bound = core::hf_ratio_bound(alpha);
    table.add_row({stats::fmt(alpha, 3), stats::fmt(hf_worst, 3),
                   stats::fmt(hf_bound, 3),
                   stats::fmt(100.0 * hf_worst / hf_bound, 0) + "%",
                   stats::fmt(ba_worst, 3), stats::fmt(ba_bound, 3),
                   stats::fmt(100.0 * ba_worst / ba_bound, 0) + "%",
                   stats::fmt(bahf_worst, 3), stats::fmt(bahf_bound, 3)});
  }
  table.print(std::cout);
  std::cout << "\n'tight%' = worst observed ratio as a share of the "
               "theoretical bound; the point-mass adversary is the worst "
               "i.i.d. instance but not necessarily the global worst case, "
               "so 100% is not expected.\n";
  return 0;
}
