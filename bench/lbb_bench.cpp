// lbb_bench: the unified driver for every reproduction experiment and
// microbenchmark (formerly 17 standalone binaries).
//
//   lbb_bench --help               list experiments and partitioners
//   lbb_bench <experiment> [--options]
//
// Exit codes: 0 success, 1 runtime failure, 2 bad command line (unknown
// experiment, malformed option value, unknown --algos name), 3 cancelled
// (--time-limit expired).
#include <exception>
#include <iomanip>
#include <iostream>
#include <string_view>

#include "bench/bench_cli.hpp"
#include "bench/experiment_registry.hpp"
#include "core/partitioner.hpp"
#include "core/run_context.hpp"
#include "runtime/par_partitioners.hpp"
#include "sim/partitioners.hpp"

namespace {

void print_usage(std::ostream& os) {
  os << "usage: lbb_bench <experiment> [--options]\n"
     << "\n"
     << "Every experiment accepts --help-style options of the form\n"
     << "--name=value; most take --trials, --seed, --threads (0 = all\n"
     << "cores; results are identical for every thread count) and --csv.\n"
     << "\n"
     << "experiments:\n";
  for (const lbb::bench::Experiment& exp : lbb::bench::experiments()) {
    os << "  " << std::left << std::setw(20) << exp.name << exp.description
       << "\n";
    // Key flags come from the registry entry itself, so --help can never
    // drift from what the experiment actually parses.
    if (!exp.flags.empty()) {
      os << "  " << std::setw(20) << "" << exp.flags << "\n";
    }
  }
  os << "\n"
     << "partitioners (names accepted where --algos applies):\n";
  for (const lbb::core::PartitionerInfo& info :
       lbb::core::PartitionerRegistry::instance().list()) {
    os << "  " << std::left << std::setw(20) << info.name << info.description
       << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Make the sim-layer ("phf:*", "sim:*") and work-stealing ("par:*")
  // names resolvable everywhere.
  lbb::sim::register_sim_partitioners();
  lbb::runtime::register_par_partitioners();

  if (argc < 2) {
    print_usage(std::cerr);
    return 2;
  }
  const std::string_view command(argv[1]);
  if (command == "--help" || command == "-h" || command == "help") {
    print_usage(std::cout);
    return 0;
  }
  const lbb::bench::Experiment* exp = lbb::bench::find_experiment(command);
  if (exp == nullptr) {
    std::cerr << "lbb_bench: unknown experiment '" << command << "'\n\n";
    print_usage(std::cerr);
    return 2;
  }
  try {
    // Shift argv so the experiment sees itself as argv[0].
    const int rc = exp->run(argc - 1, argv + 1);
    // Join the shared par:* pools at a deterministic point instead of
    // leaning on static destruction order (see par_partitioners.hpp).
    lbb::runtime::shutdown_shared_pools();
    return rc;
  } catch (const lbb::bench::CliError& e) {
    std::cerr << "lbb_bench " << exp->name << ": " << e.what() << "\n";
    return 2;
  } catch (const lbb::core::UnknownPartitionerError& e) {
    std::cerr << "lbb_bench " << exp->name << ": " << e.what() << "\n";
    return 2;
  } catch (const lbb::core::OperationCancelled& e) {
    std::cerr << "lbb_bench " << exp->name << ": cancelled: " << e.what()
              << "\n";
    return 3;
  } catch (const std::exception& e) {
    std::cerr << "lbb_bench " << exp->name << ": " << e.what() << "\n";
    return 1;
  }
}
