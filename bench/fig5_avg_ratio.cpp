// Reproduces Figure 5 of the paper: average performance ratio of BA, BA*,
// BA-HF, HF versus log2 N for alpha-hat ~ U[0.1, 0.5], beta = 1.0.
//
// Usage:
//   lbb_bench fig5            quick mode
//   lbb_bench fig5 --full     1000 trials for every N = 2^5 ... 2^20
//   lbb_bench fig5 --threads=8  trials on 8 workers (same output bytes)
//   lbb_bench fig5 --batch=8  SoA batched engine, 8 lanes (same output bytes)
//   lbb_bench fig5 --algos=ba,hf  any registered partitioner names
//
// Expected shape (paper, Figure 5): four nearly flat series ordered
// BA > BA* > BA-HF > HF, with HF's average ratio almost constant across the
// whole range N = 32 ... 1,048,576.
#include <iostream>

#include "bench/bench_cli.hpp"
#include "bench/experiment_registry.hpp"
#include "experiments/ratio_experiment.hpp"
#include "stats/table.hpp"

int lbb::bench::run_fig5(int argc, char** argv) {
  using namespace lbb;

  const bench::Cli cli(argc, argv);
  experiments::RatioExperimentConfig config;
  config.dist = problems::AlphaDistribution::uniform(
      cli.get_double("lo", 0.1), cli.get_double("hi", 0.5));
  config.beta = cli.get_double("beta", 1.0);
  config.trials = static_cast<std::int32_t>(cli.get_int("trials", 1000));
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  config.threads = cli.threads();
  config.batch = static_cast<std::int32_t>(cli.get_int("batch", config.batch));
  config.time_limit_seconds = cli.get_double("time-limit", 0.0);
  if (const auto algos = cli.get_list("algos"); !algos.empty()) {
    config.algos = algos;
  }
  config.log2_n = {5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20};
  if (!cli.flag("full")) {
    config.bisection_budget = cli.get_int("budget", std::int64_t{1} << 23);
  }

  std::cout << "Figure 5: average ratio vs log2(N), alpha-hat ~ "
            << config.dist.describe() << ", beta = " << config.beta << "\n\n";

  const auto result = experiments::run_ratio_experiment(config);

  const auto display_of = [&](const std::string& algo) {
    return result.cell(algo, config.log2_n.front()).display;
  };

  stats::TextTable table;
  std::vector<std::string> header = {"logN"};
  for (const std::string& algo : config.algos) {
    header.push_back(display_of(algo));
  }
  table.set_header(std::move(header));
  for (const std::int32_t k : config.log2_n) {
    std::vector<std::string> row = {std::to_string(k)};
    for (const std::string& algo : config.algos) {
      row.push_back(stats::fmt(result.cell(algo, k).ratio.mean(), 3));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  const std::string csv_path = cli.get_string("csv");
  if (!csv_path.empty()) {
    experiments::write_ratio_csv(result, csv_path);
    std::cout << "\n(csv written to " << csv_path << ")\n";
  }

  // Simple ASCII rendering of the figure.
  std::cout << "\navg ratio (x = logN, each column scaled to [1, 4])\n";
  for (const std::string& algo : config.algos) {
    std::cout << display_of(algo) << "\t";
    for (const std::int32_t k : config.log2_n) {
      const double r = result.cell(algo, k).ratio.mean();
      const int height =
          std::max(0, std::min(9, static_cast<int>((r - 1.0) * 3.0)));
      std::cout << height;
    }
    std::cout << "\n";
  }
  return 0;
}
