// Reproduces Figure 5 of the paper: average performance ratio of BA, BA*,
// BA-HF, HF versus log2 N for alpha-hat ~ U[0.1, 0.5], beta = 1.0.
//
// Usage:
//   fig5_avg_ratio            quick mode
//   fig5_avg_ratio --full     1000 trials for every N = 2^5 ... 2^20
//   fig5_avg_ratio --threads=8  trials on 8 workers (same output bytes)
//
// Expected shape (paper, Figure 5): four nearly flat series ordered
// BA > BA* > BA-HF > HF, with HF's average ratio almost constant across the
// whole range N = 32 ... 1,048,576.
#include <iostream>

#include "bench/bench_cli.hpp"
#include "experiments/ratio_experiment.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  using namespace lbb;
  using experiments::Algo;

  const bench::Cli cli(argc, argv);
  experiments::RatioExperimentConfig config;
  config.dist = problems::AlphaDistribution::uniform(
      cli.get_double("lo", 0.1), cli.get_double("hi", 0.5));
  config.beta = cli.get_double("beta", 1.0);
  config.trials = static_cast<std::int32_t>(cli.get_int("trials", 1000));
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  config.threads = cli.threads();
  config.log2_n = {5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20};
  if (!cli.flag("full")) {
    config.bisection_budget = cli.get_int("budget", std::int64_t{1} << 23);
  }

  std::cout << "Figure 5: average ratio vs log2(N), alpha-hat ~ "
            << config.dist.describe() << ", beta = " << config.beta << "\n\n";

  const auto result = experiments::run_ratio_experiment(config);

  stats::TextTable table;
  table.set_header({"logN", "BA", "BA*", "BA-HF", "HF"});
  for (const std::int32_t k : config.log2_n) {
    table.add_row({std::to_string(k),
                   stats::fmt(result.cell(Algo::kBA, k).ratio.mean(), 3),
                   stats::fmt(result.cell(Algo::kBAStar, k).ratio.mean(), 3),
                   stats::fmt(result.cell(Algo::kBAHF, k).ratio.mean(), 3),
                   stats::fmt(result.cell(Algo::kHF, k).ratio.mean(), 3)});
  }
  table.print(std::cout);

  const std::string csv_path = cli.get_string("csv");
  if (!csv_path.empty()) {
    experiments::write_ratio_csv(result, csv_path);
    std::cout << "\n(csv written to " << csv_path << ")\n";
  }

  // Simple ASCII rendering of the figure.
  std::cout << "\navg ratio (x = logN, each column scaled to [1, 4])\n";
  for (const Algo algo :
       {Algo::kBA, Algo::kBAStar, Algo::kBAHF, Algo::kHF}) {
    std::cout << experiments::algo_name(algo) << "\t";
    for (const std::int32_t k : config.log2_n) {
      const double r = result.cell(algo, k).ratio.mean();
      const int height =
          std::max(0, std::min(9, static_cast<int>((r - 1.0) * 3.0)));
      std::cout << height;
    }
    std::cout << "\n";
  }
  return 0;
}
