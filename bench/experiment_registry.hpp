// The lbb_bench experiment table: one declarative entry per reproduction
// harness, replacing the 17 standalone bench binaries.
//
//   lbb_bench table1 --trials=48 --csv=out.csv
//   lbb_bench fault_sweep --logn=8 --trials=3
//   lbb_bench micro_core --benchmark_filter=BM_HfPartition
//
// Each entry points at a run_*() function that is the former binary's
// main() verbatim (argv[0] is the subcommand name, options start at
// argv[1]); output stays byte-identical to the pre-driver binaries, which
// the golden tests under tests/golden/ pin down.  Historical binary names
// ("table1_ratios", "fig5_avg_ratio") remain accepted as aliases.
#pragma once

#include <string_view>
#include <vector>

namespace lbb::bench {

/// One subcommand of the lbb_bench driver.
struct Experiment {
  std::string_view name;          ///< subcommand, e.g. "table1"
  std::string_view legacy_alias;  ///< pre-driver binary name ("" if same)
  std::string_view description;   ///< one line for --help
  std::string_view flags;         ///< key --options, rendered by --help
  int (*run)(int argc, char** argv);
};

/// The experiment table, in help/display order.
[[nodiscard]] const std::vector<Experiment>& experiments();

/// Looks up a subcommand by name or legacy alias; nullptr when unknown.
[[nodiscard]] const Experiment* find_experiment(std::string_view name);

// Entry points (one per former bench binary).
int run_table1(int argc, char** argv);
int run_fig5(int argc, char** argv);
int run_beta_sweep(int argc, char** argv);
int run_interval_sweep(int argc, char** argv);
int run_runtime_scaling(int argc, char** argv);
int run_phf_iterations(int argc, char** argv);
int run_applications(int argc, char** argv);
int run_collective_costs(int argc, char** argv);
int run_ablation_oblivious(int argc, char** argv);
int run_bound_tightness(int argc, char** argv);
int run_topology_ablation(int argc, char** argv);
int run_fault_sweep(int argc, char** argv);
int run_noise_robustness(int argc, char** argv);
int run_fem_speedup(int argc, char** argv);
int run_par_speedup(int argc, char** argv);
int run_serve_load(int argc, char** argv);
int run_tail_study(int argc, char** argv);
int run_perf_report(int argc, char** argv);
int run_micro_core(int argc, char** argv);
int run_micro_sim(int argc, char** argv);

}  // namespace lbb::bench
