// Google-benchmark microbenchmarks of the core algorithms: engineering
// ablation for the sequential costs behind the simulation experiments
// (HF's heap, BA's recursion, per-bisection cost of the problem classes).
#include <benchmark/benchmark.h>

#include <memory>

#include "core/lbb.hpp"
#include "problems/alpha_dist.hpp"
#include "problems/fe_tree.hpp"
#include "problems/grid_domain.hpp"
#include "problems/pivot_list.hpp"
#include "problems/synthetic.hpp"

namespace {

using lbb::problems::AlphaDistribution;
using lbb::problems::SyntheticProblem;

void BM_HfPartition(benchmark::State& state) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  const SyntheticProblem p(1, AlphaDistribution::uniform(0.1, 0.5));
  for (auto _ : state) {
    auto part = lbb::core::hf_partition(p, n);
    benchmark::DoNotOptimize(part.pieces.data());
  }
  state.SetItemsProcessed(state.iterations() * (n - 1));
}
BENCHMARK(BM_HfPartition)->RangeMultiplier(8)->Range(64, 1 << 15);

void BM_BaPartition(benchmark::State& state) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  const SyntheticProblem p(1, AlphaDistribution::uniform(0.1, 0.5));
  for (auto _ : state) {
    auto part = lbb::core::ba_partition(p, n);
    benchmark::DoNotOptimize(part.pieces.data());
  }
  state.SetItemsProcessed(state.iterations() * (n - 1));
}
BENCHMARK(BM_BaPartition)->RangeMultiplier(8)->Range(64, 1 << 15);

void BM_BaHfPartition(benchmark::State& state) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  const SyntheticProblem p(1, AlphaDistribution::uniform(0.1, 0.5));
  for (auto _ : state) {
    auto part = lbb::core::ba_hf_partition(
        p, n, lbb::core::BaHfParams{0.1, 1.0});
    benchmark::DoNotOptimize(part.pieces.data());
  }
  state.SetItemsProcessed(state.iterations() * (n - 1));
}
BENCHMARK(BM_BaHfPartition)->RangeMultiplier(8)->Range(64, 1 << 15);

void BM_HfWithTreeRecording(benchmark::State& state) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  const SyntheticProblem p(1, AlphaDistribution::uniform(0.1, 0.5));
  lbb::core::PartitionOptions opt;
  opt.record_tree = true;
  for (auto _ : state) {
    auto part = lbb::core::hf_partition(p, n, opt);
    benchmark::DoNotOptimize(part.tree.size());
  }
  state.SetItemsProcessed(state.iterations() * (n - 1));
}
BENCHMARK(BM_HfWithTreeRecording)->Arg(4096);

void BM_SyntheticBisect(benchmark::State& state) {
  const SyntheticProblem p(1, AlphaDistribution::uniform(0.1, 0.5));
  for (auto _ : state) {
    auto children = p.bisect();
    benchmark::DoNotOptimize(children.first.weight());
  }
}
BENCHMARK(BM_SyntheticBisect);

void BM_PivotListBisect(benchmark::State& state) {
  const lbb::problems::PivotListProblem p(1, 1 << 20);
  for (auto _ : state) {
    auto children = p.bisect();
    benchmark::DoNotOptimize(children.first.count());
  }
}
BENCHMARK(BM_PivotListBisect);

void BM_FeTreeBisect(benchmark::State& state) {
  const auto tree = lbb::problems::FeTree::adaptive_refinement(
      3, static_cast<std::int32_t>(state.range(0)));
  const lbb::problems::FeTreeProblem p(tree);
  for (auto _ : state) {
    auto children = p.bisect();
    benchmark::DoNotOptimize(children.first.weight());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FeTreeBisect)->RangeMultiplier(4)->Range(256, 1 << 13);

void BM_GridBisect(benchmark::State& state) {
  const auto field = std::make_shared<const lbb::problems::GridField>(
      lbb::problems::GridField::random_hotspots(5, 512, 512));
  const lbb::problems::GridProblem p(field);
  for (auto _ : state) {
    auto children = p.bisect();
    benchmark::DoNotOptimize(children.first.weight());
  }
}
BENCHMARK(BM_GridBisect);

void BM_SplitProcessors(benchmark::State& state) {
  double heavier = 0.7;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        lbb::core::ba_split_processors(heavier, 1.0 - heavier + 0.3, 1024));
  }
}
BENCHMARK(BM_SplitProcessors);

}  // namespace

BENCHMARK_MAIN();
