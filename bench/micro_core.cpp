// Google-benchmark microbenchmarks of the core algorithms: engineering
// ablation for the sequential costs behind the simulation experiments
// (HF's heap, BA's recursion, per-bisection cost of the problem classes).
#include <benchmark/benchmark.h>

#include "bench/experiment_registry.hpp"

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <vector>

#include "core/hf.hpp"
#include "core/lbb.hpp"
#include "core/simd/dispatch.hpp"
#include "core/workspace.hpp"
#include "problems/alpha_dist.hpp"
#include "problems/fe_tree.hpp"
#include "problems/grid_domain.hpp"
#include "problems/pivot_list.hpp"
#include "problems/synthetic.hpp"
#include "problems/synthetic_lanes.hpp"
#include "runtime/par_partition.hpp"
#include "runtime/thread_pool.hpp"
#include "runtime/work_stealing.hpp"
#include "stats/alloc_stats.hpp"

namespace {

using lbb::problems::AlphaDistribution;
using lbb::problems::SyntheticProblem;

void BM_HfPartition(benchmark::State& state) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  const SyntheticProblem p(1, AlphaDistribution::uniform(0.1, 0.5));
  for (auto _ : state) {
    auto part = lbb::core::hf_partition(p, n);
    benchmark::DoNotOptimize(part.pieces.data());
  }
  state.SetItemsProcessed(state.iterations() * (n - 1));
}

void BM_BaPartition(benchmark::State& state) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  const SyntheticProblem p(1, AlphaDistribution::uniform(0.1, 0.5));
  for (auto _ : state) {
    auto part = lbb::core::ba_partition(p, n);
    benchmark::DoNotOptimize(part.pieces.data());
  }
  state.SetItemsProcessed(state.iterations() * (n - 1));
}

void BM_BaHfPartition(benchmark::State& state) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  const SyntheticProblem p(1, AlphaDistribution::uniform(0.1, 0.5));
  for (auto _ : state) {
    auto part = lbb::core::ba_hf_partition(
        p, n, lbb::core::BaHfParams{0.1, 1.0});
    benchmark::DoNotOptimize(part.pieces.data());
  }
  state.SetItemsProcessed(state.iterations() * (n - 1));
}

/// Attaches allocations-per-iteration and allocations-per-bisection
/// counters to a partitioning benchmark (live because lbb_bench links the
/// allocation probe; harmless zeros otherwise).
void set_alloc_counters(benchmark::State& state,
                        const lbb::stats::AllocStats& delta, std::int32_t n) {
  const auto iters = static_cast<double>(state.iterations());
  if (iters <= 0.0) return;
  const double per_iter = static_cast<double>(delta.count) / iters;
  state.counters["allocs_per_op"] = per_iter;
  state.counters["allocs_per_bisection"] =
      n > 1 ? per_iter / static_cast<double>(n - 1) : 0.0;
}

// Workspace variants of the partition benchmarks: the steady-state hot
// path of the experiment engine (warm TrialWorkspace, pieces recycled).
// The allocs_per_op counter reads 0 here -- the `perf` ctest gate asserts
// exactly that -- while the workspace-free variants above pay the
// per-call scratch allocations.
void BM_HfPartitionWorkspace(benchmark::State& state) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  const SyntheticProblem p(1, AlphaDistribution::uniform(0.1, 0.5));
  lbb::core::TrialWorkspace<SyntheticProblem> ws;
  ws.recycle(lbb::core::hf_partition(ws, p, n));  // warm-up
  const auto before = lbb::stats::alloc_stats();
  for (auto _ : state) {
    auto part = lbb::core::hf_partition(ws, p, n);
    benchmark::DoNotOptimize(part.pieces.data());
    ws.recycle(std::move(part));
  }
  set_alloc_counters(state, lbb::stats::alloc_stats() - before, n);
  state.SetItemsProcessed(state.iterations() * (n - 1));
}

void BM_BaPartitionWorkspace(benchmark::State& state) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  const SyntheticProblem p(1, AlphaDistribution::uniform(0.1, 0.5));
  lbb::core::TrialWorkspace<SyntheticProblem> ws;
  ws.recycle(lbb::core::ba_partition(ws, p, n));  // warm-up
  const auto before = lbb::stats::alloc_stats();
  for (auto _ : state) {
    auto part = lbb::core::ba_partition(ws, p, n);
    benchmark::DoNotOptimize(part.pieces.data());
    ws.recycle(std::move(part));
  }
  set_alloc_counters(state, lbb::stats::alloc_stats() - before, n);
  state.SetItemsProcessed(state.iterations() * (n - 1));
}

void BM_BaHfPartitionWorkspace(benchmark::State& state) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  const SyntheticProblem p(1, AlphaDistribution::uniform(0.1, 0.5));
  const lbb::core::BaHfParams params{0.1, 1.0};
  lbb::core::TrialWorkspace<SyntheticProblem> ws;
  ws.recycle(lbb::core::ba_hf_partition(ws, p, n, params));  // warm-up
  const auto before = lbb::stats::alloc_stats();
  for (auto _ : state) {
    auto part = lbb::core::ba_hf_partition(ws, p, n, params);
    benchmark::DoNotOptimize(part.pieces.data());
    ws.recycle(std::move(part));
  }
  set_alloc_counters(state, lbb::stats::alloc_stats() - before, n);
  state.SetItemsProcessed(state.iterations() * (n - 1));
}

// Erased bisect on the small-buffer path: both children are constructed
// in place inside the child handles (no heap traffic; the allocs_per_op
// counter pins it).
void BM_AnyProblemBisect(benchmark::State& state) {
  const SyntheticProblem p(1, AlphaDistribution::uniform(0.1, 0.5));
  const auto before = lbb::stats::alloc_stats();
  for (auto _ : state) {
    lbb::core::AnyProblem erased{SyntheticProblem(p)};
    auto children = erased.bisect();
    benchmark::DoNotOptimize(children.first.weight());
  }
  set_alloc_counters(state, lbb::stats::alloc_stats() - before, 2);
}

void BM_HfWithTreeRecording(benchmark::State& state) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  const SyntheticProblem p(1, AlphaDistribution::uniform(0.1, 0.5));
  lbb::core::PartitionOptions opt;
  opt.record_tree = true;
  for (auto _ : state) {
    auto part = lbb::core::hf_partition(p, n, opt);
    benchmark::DoNotOptimize(part.tree.size());
  }
  state.SetItemsProcessed(state.iterations() * (n - 1));
}

// The heap that orders HF's "always split the heaviest" loop, isolated
// from the bisection work: push n entries in a scrambled weight order,
// then pop them all.  This is the pattern hf_run drives (interleaved in
// reality, but push-all/pop-all bounds both sift directions).
void BM_HfHeapPushPop(benchmark::State& state) {
  const auto n = static_cast<std::int64_t>(state.range(0));
  std::vector<double> weights(static_cast<std::size_t>(n));
  std::uint64_t x = 0x9e3779b97f4a7c15ull;  // splitmix-style scramble
  for (auto& w : weights) {
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    w = static_cast<double>(z ^ (z >> 31)) * 0x1p-64;
  }
  for (auto _ : state) {
    lbb::core::detail::HfHeap heap;
    heap.reserve(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
      heap.push({weights[static_cast<std::size_t>(i)], i,
                 static_cast<std::int32_t>(i)});
    }
    double sink = 0.0;
    while (!heap.empty()) sink += heap.pop().weight;
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * n);
}

// Dense lane bisection -- the inner loop of the batched SoA trial engine
// (core/batch/batch_kernels.hpp) -- under a forced lane-kernel ISA.  The
// Scalar/Simd pair measures exactly what the simd_speedup column of
// BENCH_ratio_experiment.json summarizes; both produce bit-identical
// outputs (pinned by experiments_batch_identity_test), only the rate may
// differ.  On a portable build (or a non-AVX CPU) the forced "simd" level
// clamps to scalar and the two benchmarks coincide.
void bisect_lanes_under(benchmark::State& state, lbb::core::simd::Isa level) {
  const lbb::core::simd::ScopedForceIsa force(level);
  const auto count = static_cast<std::int32_t>(state.range(0));
  const AlphaDistribution dist = AlphaDistribution::uniform(0.1, 0.5);
  const lbb::problems::SyntheticLaneModel model(dist);
  std::vector<std::uint64_t> hash(static_cast<std::size_t>(count));
  std::vector<double> weight(static_cast<std::size_t>(count), 1.0);
  for (std::int32_t i = 0; i < count; ++i) {
    hash[static_cast<std::size_t>(i)] =
        lbb::problems::SyntheticLaneModel::root_hash(
            static_cast<std::uint64_t>(i) + 1);
  }
  std::vector<std::uint64_t> hh(hash.size()), lh(hash.size());
  std::vector<double> hw(hash.size()), lw(hash.size());
  for (auto _ : state) {
    model.bisect_lanes(count, hash.data(), weight.data(), hh.data(),
                       hw.data(), lh.data(), lw.data());
    benchmark::DoNotOptimize(hh.data());
    benchmark::DoNotOptimize(hw.data());
    // Feed the heavy children back as parents so the hash stream keeps
    // evolving like a real descent instead of re-hashing constants.
    hash.swap(hh);
    weight.swap(hw);
  }
  state.counters["isa"] = static_cast<double>(
      static_cast<int>(lbb::core::simd::active_isa()));
  state.SetItemsProcessed(state.iterations() * count);
}

void BM_BisectLanesScalar(benchmark::State& state) {
  bisect_lanes_under(state, lbb::core::simd::Isa::kScalar);
}

void BM_BisectLanesSimd(benchmark::State& state) {
  // kAvx512 clamps to the strongest compiled + CPU-supported table.
  bisect_lanes_under(state, lbb::core::simd::Isa::kAvx512);
}

// Pop-side sift-down of the 4-ary HF heap in isolation: refill the heap
// from a pre-scrambled entry pool (timing paused), then drain it.  This is
// the loop the child-cacheline software prefetch in HfHeap::pop targets;
// compare against seed baselines at n >= 8192 where the heap outgrows L1/L2
// and the prefetch starts paying.
void BM_HfSiftDown(benchmark::State& state) {
  const auto n = static_cast<std::int64_t>(state.range(0));
  std::vector<lbb::core::detail::HfHeapEntry> pool(
      static_cast<std::size_t>(n));
  std::uint64_t x = 0x9e3779b97f4a7c15ull;
  for (std::int64_t i = 0; i < n; ++i) {
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    pool[static_cast<std::size_t>(i)] = {
        static_cast<double>(z ^ (z >> 31)) * 0x1p-64, i,
        static_cast<std::int32_t>(i)};
  }
  lbb::core::detail::HfHeap heap;
  heap.reserve(static_cast<std::size_t>(n));
  for (auto _ : state) {
    state.PauseTiming();
    heap.clear();
    for (const auto& e : pool) heap.push(e);
    state.ResumeTiming();
    double sink = 0.0;
    while (!heap.empty()) sink += heap.pop().weight;
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_SyntheticBisect(benchmark::State& state) {
  const SyntheticProblem p(1, AlphaDistribution::uniform(0.1, 0.5));
  for (auto _ : state) {
    auto children = p.bisect();
    benchmark::DoNotOptimize(children.first.weight());
  }
}

void BM_PivotListBisect(benchmark::State& state) {
  const lbb::problems::PivotListProblem p(1, 1 << 20);
  for (auto _ : state) {
    auto children = p.bisect();
    benchmark::DoNotOptimize(children.first.count());
  }
}

void BM_FeTreeBisect(benchmark::State& state) {
  const auto tree = lbb::problems::FeTree::adaptive_refinement(
      3, static_cast<std::int32_t>(state.range(0)));
  const lbb::problems::FeTreeProblem p(tree);
  for (auto _ : state) {
    auto children = p.bisect();
    benchmark::DoNotOptimize(children.first.weight());
  }
  state.SetComplexityN(state.range(0));
}

void BM_GridBisect(benchmark::State& state) {
  const auto field = std::make_shared<const lbb::problems::GridField>(
      lbb::problems::GridField::random_hotspots(5, 512, 512));
  const lbb::problems::GridProblem p(field);
  for (auto _ : state) {
    auto children = p.bisect();
    benchmark::DoNotOptimize(children.first.weight());
  }
}

void BM_SplitProcessors(benchmark::State& state) {
  double heavier = 0.7;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        lbb::core::ba_split_processors(heavier, 1.0 - heavier + 0.3, 1024));
  }
}

// Task-submission cost of the ThreadPool, batched so queue/wake effects
// amortize like in the experiment engine.  Since the move-only
// UniqueFunction rewrite each submit_task costs exactly two allocations
// (the future's shared state + the heap-stored closure -- promise makes it
// larger than the SBO buffer); the old shared_ptr<packaged_task> wrapper
// paid three plus two atomic refcount bumps per hop.  allocs_per_op pins
// the new number.
void BM_ThreadPoolSubmitTask(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  lbb::runtime::ThreadPool pool(1);
  std::vector<std::future<std::uint64_t>> futures;
  futures.reserve(batch);
  const auto before = lbb::stats::alloc_stats();
  for (auto _ : state) {
    for (std::size_t i = 0; i < batch; ++i) {
      futures.push_back(pool.submit_task([i] {
        return static_cast<std::uint64_t>(i) * 2654435761u;
      }));
    }
    std::uint64_t sum = 0;
    for (auto& f : futures) sum += f.get();
    benchmark::DoNotOptimize(sum);
    futures.clear();
  }
  const auto delta = lbb::stats::alloc_stats() - before;
  const auto ops =
      static_cast<double>(state.iterations()) * static_cast<double>(batch);
  if (ops > 0.0) {
    state.counters["allocs_per_op"] =
        static_cast<double>(delta.count) / ops;
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch));
}

// Move-only fire-and-forget path (no future): one heap allocation per task
// when the closure outgrows the SBO buffer, zero when it fits.
void BM_ThreadPoolSubmitInline(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  lbb::runtime::ThreadPool pool(1);
  std::atomic<std::uint64_t> sink{0};
  const auto before = lbb::stats::alloc_stats();
  for (auto _ : state) {
    for (std::size_t i = 0; i < batch; ++i) {
      pool.submit([&sink, i] {
        sink.fetch_add(i, std::memory_order_relaxed);
      });
    }
    pool.wait_idle();
    benchmark::DoNotOptimize(sink.load());
  }
  const auto delta = lbb::stats::alloc_stats() - before;
  const auto ops =
      static_cast<double>(state.iterations()) * static_cast<double>(batch);
  if (ops > 0.0) {
    state.counters["allocs_per_op"] =
        static_cast<double>(delta.count) / ops;
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch));
}

// Work-stealing parallel BA over a warm single-worker pool: the same
// contract as BM_BaPartitionWorkspace (allocs_per_op == 0 steady-state,
// asserted by the perf gate) plus the runtime's spawn/terminal overhead.
void BM_ParBaPartitionWorkspace(benchmark::State& state) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  const SyntheticProblem p(1, AlphaDistribution::uniform(0.1, 0.5));
  lbb::runtime::WorkStealingPool pool(1);
  lbb::core::TrialWorkspace<SyntheticProblem> ws;
  for (int warm = 0; warm < 2; ++warm) {
    ws.recycle(lbb::runtime::par_ba_partition(pool, ws, p, n));
  }
  const auto before = lbb::stats::alloc_stats();
  for (auto _ : state) {
    auto part = lbb::runtime::par_ba_partition(pool, ws, p, n);
    benchmark::DoNotOptimize(part.pieces.data());
    ws.recycle(std::move(part));
  }
  set_alloc_counters(state, lbb::stats::alloc_stats() - before, n);
  state.SetItemsProcessed(state.iterations() * (n - 1));
}

/// Registers this file's benchmarks with google-benchmark.  Called by
/// run_micro_core() so `lbb_bench micro_core` runs exactly this set even
/// though the other micro suite is linked into the same binary.
void register_micro_core_benchmarks() {
  benchmark::RegisterBenchmark("BM_HfPartition", BM_HfPartition)
      ->RangeMultiplier(8)
      ->Range(64, 1 << 15);
  benchmark::RegisterBenchmark("BM_BaPartition", BM_BaPartition)
      ->RangeMultiplier(8)
      ->Range(64, 1 << 15);
  benchmark::RegisterBenchmark("BM_BaHfPartition", BM_BaHfPartition)
      ->RangeMultiplier(8)
      ->Range(64, 1 << 15);
  benchmark::RegisterBenchmark("BM_HfPartitionWorkspace",
                               BM_HfPartitionWorkspace)
      ->RangeMultiplier(8)
      ->Range(64, 1 << 15);
  benchmark::RegisterBenchmark("BM_BaPartitionWorkspace",
                               BM_BaPartitionWorkspace)
      ->RangeMultiplier(8)
      ->Range(64, 1 << 15);
  benchmark::RegisterBenchmark("BM_BaHfPartitionWorkspace",
                               BM_BaHfPartitionWorkspace)
      ->RangeMultiplier(8)
      ->Range(64, 1 << 15);
  benchmark::RegisterBenchmark("BM_AnyProblemBisect", BM_AnyProblemBisect);
  benchmark::RegisterBenchmark("BM_HfWithTreeRecording", BM_HfWithTreeRecording)
      ->Arg(4096);
  benchmark::RegisterBenchmark("BM_HfHeapPushPop", BM_HfHeapPushPop)
      ->RangeMultiplier(8)
      ->Range(64, 1 << 15);
  benchmark::RegisterBenchmark("BM_BisectLanesScalar", BM_BisectLanesScalar)
      ->RangeMultiplier(4)
      ->Range(64, 1 << 12);
  benchmark::RegisterBenchmark("BM_BisectLanesSimd", BM_BisectLanesSimd)
      ->RangeMultiplier(4)
      ->Range(64, 1 << 12);
  benchmark::RegisterBenchmark("BM_HfSiftDown", BM_HfSiftDown)
      ->RangeMultiplier(8)
      ->Range(512, 1 << 15);
  benchmark::RegisterBenchmark("BM_SyntheticBisect", BM_SyntheticBisect);
  benchmark::RegisterBenchmark("BM_PivotListBisect", BM_PivotListBisect);
  benchmark::RegisterBenchmark("BM_FeTreeBisect", BM_FeTreeBisect)
      ->RangeMultiplier(4)
      ->Range(256, 1 << 13);
  benchmark::RegisterBenchmark("BM_GridBisect", BM_GridBisect);
  benchmark::RegisterBenchmark("BM_SplitProcessors", BM_SplitProcessors);
  benchmark::RegisterBenchmark("BM_ThreadPoolSubmitTask",
                               BM_ThreadPoolSubmitTask)
      ->Arg(256);
  benchmark::RegisterBenchmark("BM_ThreadPoolSubmitInline",
                               BM_ThreadPoolSubmitInline)
      ->Arg(256);
  benchmark::RegisterBenchmark("BM_ParBaPartitionWorkspace",
                               BM_ParBaPartitionWorkspace)
      ->RangeMultiplier(8)
      ->Range(64, 1 << 15);
}

}  // namespace

int lbb::bench::run_micro_core(int argc, char** argv) {
  register_micro_core_benchmarks();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
