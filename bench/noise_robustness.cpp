// Robustness to approximate weights: the paper assumes the weight "can be
// calculated (or approximated) easily".  How much balance is lost when the
// balancer only sees w * (1 +- epsilon)?
//
// Usage: noise_robustness [--trials=N] [--logn=12] [--threads=K]
//
// Expected shape: the achieved *true* ratio degrades gracefully --
// roughly max(ratio(0), (1+epsilon)/(1-epsilon)) -- because misranking
// only happens between problems whose weights differ by less than the
// noise band.
#include <algorithm>
#include <iostream>
#include <optional>
#include <vector>

#include "bench/bench_cli.hpp"
#include "bench/experiment_registry.hpp"
#include "core/ba.hpp"
#include "core/hf.hpp"
#include "problems/alpha_dist.hpp"
#include "problems/noisy_weight.hpp"
#include "problems/synthetic.hpp"
#include "runtime/parallel_for.hpp"
#include "runtime/thread_pool.hpp"
#include "stats/rng.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"

int lbb::bench::run_noise_robustness(int argc, char** argv) {
  using namespace lbb;

  const bench::Cli cli(argc, argv);
  const auto trials = static_cast<std::int32_t>(cli.get_int("trials", 60));
  const auto logn = static_cast<std::int32_t>(cli.get_int("logn", 12));
  const std::int32_t n = 1 << logn;
  const auto dist = problems::AlphaDistribution::uniform(0.1, 0.5);
  const std::int32_t threads = cli.threads();

  std::cout << "Approximate-weight robustness, N = " << n
            << ", alpha-hat ~ " << dist.describe() << ", " << trials
            << " trials; entries are average *true* ratios\n\n";

  std::optional<runtime::ThreadPool> pool;
  if (threads > 1) pool.emplace(static_cast<unsigned>(threads));
  // Fixed chunking + in-order merge: results match the sequential loop
  // bit-for-bit at any thread count (same scheme as src/experiments).
  constexpr std::int64_t kChunk = 8;

  stats::TextTable table;
  table.set_header({"epsilon", "HF true ratio", "BA true ratio",
                    "(1+e)/(1-e)"});
  for (const double eps : {0.0, 0.02, 0.05, 0.1, 0.2, 0.3, 0.5}) {
    const std::int64_t chunks = (trials + kChunk - 1) / kChunk;
    std::vector<stats::RunningStats> hf_chunk(
        static_cast<std::size_t>(chunks));
    std::vector<stats::RunningStats> ba_chunk(
        static_cast<std::size_t>(chunks));
    const auto run_chunk = [&](std::int64_t chunk, std::int64_t lo,
                               std::int64_t hi) {
      stats::RunningStats hf_local, ba_local;
      for (std::int64_t t = lo; t < hi; ++t) {
        const std::uint64_t seed =
            stats::mix64(71, static_cast<std::uint64_t>(t));
        problems::SyntheticProblem inner(seed, dist);
        problems::NoisyWeightProblem<problems::SyntheticProblem> p(
            inner, eps, seed);
        hf_local.add(problems::true_ratio(core::hf_partition(p, n)));
        ba_local.add(problems::true_ratio(core::ba_partition(p, n)));
      }
      hf_chunk[static_cast<std::size_t>(chunk)] = hf_local;
      ba_chunk[static_cast<std::size_t>(chunk)] = ba_local;
    };
    if (pool) {
      runtime::parallel_for_chunks(*pool, 0, trials, kChunk, run_chunk);
    } else {
      std::int64_t chunk = 0;
      for (std::int64_t lo = 0; lo < trials; lo += kChunk, ++chunk) {
        run_chunk(chunk, lo, std::min<std::int64_t>(lo + kChunk, trials));
      }
    }
    stats::RunningStats hf, ba;
    for (std::int64_t c = 0; c < chunks; ++c) {
      hf.merge(hf_chunk[static_cast<std::size_t>(c)]);
      ba.merge(ba_chunk[static_cast<std::size_t>(c)]);
    }
    table.add_row({stats::fmt(eps, 2), stats::fmt(hf.mean(), 3),
                   stats::fmt(ba.mean(), 3),
                   stats::fmt((1.0 + eps) / (1.0 - eps), 3)});
  }
  table.print(std::cout);
  std::cout << "\nepsilon = 0 reproduces the exact-weight averages; the "
               "degradation stays within the misranking band, so modest "
               "weight estimates suffice in practice.\n";
  return 0;
}
