// Topology ablation: the paper assumes unit-cost transfers; Section 3.4
// cites hypercube embeddings and distributed data structures for the free-
// processor management.  This bench re-runs the simulated executions under
// distance-sensitive transfer costs (hypercube hops, 2-D mesh Manhattan
// distance) to expose the locality structure of the algorithms:
//
//   * BA ships every subproblem to P_{i+N1} inside its own range --
//     transfers stay short;
//   * PHF's oracle manager hands out arbitrary free processors -- phase-1
//     transfers cross the whole machine;
//   * PHF's BA'-based manager inherits BA's locality for phase 1.
//
// With --loss / --slow the simulated machine is additionally degraded by
// the fault layer (sim/fault_model.hpp); the second table then reports the
// fault accounting per topology.  Faults never change the partition, so
// the ablation stays apples-to-apples.
//
// Usage: topology_ablation [--logn=12] [--trials=10] [--loss=0.1]
//                          [--slow=0.25]
#include <iostream>

#include "bench/bench_cli.hpp"
#include "bench/experiment_registry.hpp"
#include "problems/alpha_dist.hpp"
#include "problems/synthetic.hpp"
#include "sim/fault_model.hpp"
#include "sim/par_ba.hpp"
#include "sim/phf.hpp"
#include "stats/rng.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"

int lbb::bench::run_topology_ablation(int argc, char** argv) {
  using namespace lbb;

  const bench::Cli cli(argc, argv);
  const auto logn = static_cast<std::int32_t>(cli.get_int("logn", 12));
  const auto trials = static_cast<std::int32_t>(cli.get_int("trials", 10));
  const std::int32_t n = 1 << logn;
  const double alpha = 0.1;
  const auto dist = problems::AlphaDistribution::uniform(alpha, 0.5);

  sim::FaultConfig faults;
  faults.message_loss_rate = cli.get_double("loss", 0.0);
  faults.slow_proc_fraction = cli.get_double("slow", 0.0);

  std::cout << "Transfer-cost topology ablation, N = " << n
            << ", alpha-hat ~ " << dist.describe() << ", " << trials
            << " trials (mean makespan)";
  if (faults.any()) {
    std::cout << ", faults: loss=" << faults.message_loss_rate
              << " slow=" << faults.slow_proc_fraction;
  }
  std::cout << "\n\n";

  struct Topo {
    const char* name;
    sim::CostModel::SendTopology topology;
  };
  const Topo topologies[] = {
      {"uniform (paper)", sim::CostModel::SendTopology::kUniform},
      {"hypercube", sim::CostModel::SendTopology::kHypercube},
      {"2-D mesh", sim::CostModel::SendTopology::kMesh2D},
  };

  stats::TextTable table;
  table.set_header({"topology", "BA", "BA-HF", "PHF(oracle)", "PHF(BA')"});
  stats::TextTable fault_table;
  fault_table.set_header(
      {"topology", "retries", "lost", "backoff", "partition"});
  for (const Topo& topo : topologies) {
    sim::CostModel cm;
    cm.send_topology = topo.topology;
    stats::RunningStats ba, bahf, phf_oracle, phf_bap;
    stats::RunningStats retries, lost, backoff;
    bool identical = true;
    for (std::int32_t t = 0; t < trials; ++t) {
      problems::SyntheticProblem p(
          stats::mix64(51, static_cast<std::uint64_t>(t)), dist);
      ba.add(sim::ba_simulate(p, n, cm, {}, nullptr, faults)
                 .metrics.makespan);
      bahf.add(sim::ba_hf_simulate(p, n, alpha, 1.0, cm, {}, nullptr,
                                   sim::BaHfSecondPhase::kSequentialHf,
                                   faults)
                   .metrics.makespan);
      sim::PhfSimOptions oracle;
      oracle.manager = sim::FreeProcManager::kOracle;
      oracle.faults = faults;
      const auto oracle_run = sim::phf_simulate(p, n, alpha, cm, oracle);
      phf_oracle.add(oracle_run.metrics.makespan);
      retries.add(static_cast<double>(oracle_run.metrics.retries));
      lost.add(static_cast<double>(oracle_run.metrics.lost_messages));
      backoff.add(oracle_run.metrics.backoff_time);
      if (faults.any()) {
        sim::PhfSimOptions ideal = oracle;
        ideal.faults = {};
        const auto clean = sim::phf_simulate(p, n, alpha, cm, ideal);
        if (clean.partition.sorted_weights() !=
            oracle_run.partition.sorted_weights()) {
          identical = false;
        }
      }
      sim::PhfSimOptions bap;
      bap.manager = sim::FreeProcManager::kBaPrime;
      bap.faults = faults;
      phf_bap.add(sim::phf_simulate(p, n, alpha, cm, bap).metrics.makespan);
    }
    table.add_row({topo.name, stats::fmt(ba.mean(), 1),
                   stats::fmt(bahf.mean(), 1),
                   stats::fmt(phf_oracle.mean(), 1),
                   stats::fmt(phf_bap.mean(), 1)});
    fault_table.add_row({topo.name, stats::fmt(retries.mean(), 1),
                         stats::fmt(lost.mean(), 1),
                         stats::fmt(backoff.mean(), 1),
                         identical ? "identical" : "DIVERGED"});
  }
  table.print(std::cout);
  if (faults.any()) {
    std::cout << "\nFault accounting, PHF(oracle) means per trial:\n";
    fault_table.print(std::cout);
  }
  std::cout << "\nBA's range-based placement keeps transfers short on "
               "distance-sensitive networks; PHF pays for arbitrary "
               "free-processor targets (mostly in phase 1 and in the "
               "worst send of each phase-2 round).\n";
  return 0;
}
