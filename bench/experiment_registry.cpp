#include "bench/experiment_registry.hpp"

namespace lbb::bench {

const std::vector<Experiment>& experiments() {
  static const std::vector<Experiment> kExperiments = {
      {"table1", "table1_ratios",
       "performance ratios vs N for BA/BA*/BA-HF/HF (Table 1)", run_table1},
      {"fig5", "fig5_avg_ratio",
       "average performance ratio vs log2(N), ASCII plot (Figure 5)",
       run_fig5},
      {"beta_sweep", "",
       "BA-HF ratio as a function of the beta switch parameter", run_beta_sweep},
      {"interval_sweep", "",
       "ratios across [alpha_lo, alpha_hi] bisector-quality intervals",
       run_interval_sweep},
      {"runtime_scaling", "",
       "simulated makespan/messages/collectives of PHF/BA/BA-HF vs N",
       run_runtime_scaling},
      {"phf_iterations", "",
       "PHF phase-2 iteration counts vs the Theorem 3 bound", run_phf_iterations},
      {"applications", "",
       "all algorithms on every application substrate (FEM, quadrature, ...)",
       run_applications},
      {"collective_costs", "",
       "network collective round counts vs the CostModel's charges",
       run_collective_costs},
      {"ablation_oblivious", "",
       "weight-oblivious baselines (BFS/DFS/random) vs weight-aware HF",
       run_ablation_oblivious},
      {"bound_tightness", "",
       "observed vs proven worst-case ratios on point-mass instances",
       run_bound_tightness},
      {"topology_ablation", "",
       "simulated algorithms across machine topologies and fault profiles",
       run_topology_ablation},
      {"fault_sweep", "",
       "PHF free-processor managers under message loss/delay profiles",
       run_fault_sweep},
      {"noise_robustness", "",
       "partition quality under multiplicative weight-estimate noise",
       run_noise_robustness},
      {"fem_speedup", "",
       "end-to-end speedups on adaptive FEM refinement trees", run_fem_speedup},
      {"par_speedup", "",
       "measured vs simulator-predicted speedup of the par:* partitioners",
       run_par_speedup},
      {"serve_load", "",
       "closed-loop load on the resident PartitionService (p50/p95/p99)",
       run_serve_load},
      {"perf_report", "",
       "machine-readable perf snapshot (BENCH_ratio_experiment.json)",
       run_perf_report},
      {"micro_core", "",
       "google-benchmark microbenchmarks of the core partitioners",
       run_micro_core},
      {"micro_sim", "",
       "google-benchmark microbenchmarks of the simulated machine",
       run_micro_sim},
  };
  return kExperiments;
}

const Experiment* find_experiment(std::string_view name) {
  for (const Experiment& exp : experiments()) {
    if (exp.name == name) return &exp;
    if (!exp.legacy_alias.empty() && exp.legacy_alias == name) return &exp;
  }
  return nullptr;
}

}  // namespace lbb::bench
