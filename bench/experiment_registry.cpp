#include "bench/experiment_registry.hpp"

namespace lbb::bench {

// The flags column is the single source of truth for each experiment's key
// options: --help renders it verbatim (lbb_bench.cpp), so a new option is
// added HERE, next to the entry, not in a hand-maintained usage string.
const std::vector<Experiment>& experiments() {
  static const std::vector<Experiment> kExperiments = {
      {"table1", "table1_ratios",
       "performance ratios vs N for BA/BA*/BA-HF/HF (Table 1)",
       "--trials --seed --threads --batch --algos --lo --hi --beta --budget "
       "--csv --time-limit --full",
       run_table1},
      {"fig5", "fig5_avg_ratio",
       "average performance ratio vs log2(N), ASCII plot (Figure 5)",
       "--trials --seed --threads --batch --algos --lo --hi --beta --budget "
       "--csv --time-limit --full",
       run_fig5},
      {"beta_sweep", "",
       "BA-HF ratio as a function of the beta switch parameter",
       "--trials --seed --threads --lo --hi --full", run_beta_sweep},
      {"interval_sweep", "",
       "ratios across [alpha_lo, alpha_hi] bisector-quality intervals",
       "--trials --seed --threads --full", run_interval_sweep},
      {"runtime_scaling", "",
       "simulated makespan/messages/collectives of PHF/BA/BA-HF vs N",
       "--trials --lo --hi --beta", run_runtime_scaling},
      {"phf_iterations", "",
       "PHF phase-2 iteration counts vs the Theorem 3 bound",
       "--trials --n", run_phf_iterations},
      {"applications", "",
       "all algorithms on every application substrate (FEM, quadrature, ...)",
       "--trials --n", run_applications},
      {"collective_costs", "",
       "network collective round counts vs the CostModel's charges", "",
       run_collective_costs},
      {"ablation_oblivious", "",
       "weight-oblivious baselines (BFS/DFS/random) vs weight-aware HF",
       "--trials", run_ablation_oblivious},
      {"bound_tightness", "",
       "observed vs proven worst-case ratios on point-mass instances",
       "--nmax", run_bound_tightness},
      {"topology_ablation", "",
       "simulated algorithms across machine topologies and fault profiles",
       "--trials --logn --loss --slow", run_topology_ablation},
      {"fault_sweep", "",
       "PHF free-processor managers under message loss/delay profiles",
       "--trials --logn --alpha", run_fault_sweep},
      {"noise_robustness", "",
       "partition quality under multiplicative weight-estimate noise",
       "--trials --logn --threads", run_noise_robustness},
      {"fem_speedup", "",
       "end-to-end speedups on adaptive FEM refinement trees",
       "--trials --elements --focus", run_fem_speedup},
      {"par_speedup", "",
       "measured vs simulator-predicted speedup of the par:* partitioners",
       "--trials --logn --threads --algos --grain --seed --out --verify",
       run_par_speedup},
      {"serve_load", "",
       "closed-loop load on the resident PartitionService (p50/p95/p99)",
       "--workers --clients --requests --keys --cache --queue --logn "
       "--algos --alpha --beta --seed --out --smoke",
       run_serve_load},
      {"tail_study", "",
       "million-trial max-ratio tail (p50/p99/p99.9 vs the proven bounds)",
       "--trials --logn --algos --threads --batch --budget --seed "
       "--hist-max --bins --csv --out --smoke",
       run_tail_study},
      {"perf_report", "",
       "machine-readable perf snapshot (BENCH_ratio_experiment.json)",
       "--out --threads --trials --batch", run_perf_report},
      {"micro_core", "",
       "google-benchmark microbenchmarks of the core partitioners",
       "--benchmark_filter --benchmark_repetitions", run_micro_core},
      {"micro_sim", "",
       "google-benchmark microbenchmarks of the simulated machine",
       "--benchmark_filter --benchmark_repetitions", run_micro_sim},
  };
  return kExperiments;
}

const Experiment* find_experiment(std::string_view name) {
  for (const Experiment& exp : experiments()) {
    if (exp.name == name) return &exp;
    if (!exp.legacy_alias.empty() && exp.legacy_alias == name) return &exp;
  }
  return nullptr;
}

}  // namespace lbb::bench
