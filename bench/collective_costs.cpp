// Cost-model validation (ablation): the simulator in src/sim charges
// ceil(log2 N) time units per collective -- the paper's PRAM-style
// assumption.  This bench executes the actual message-level schedules
// (src/net) and compares their measured round counts with the formula,
// including the O(log^2 N) sorting fallback used when PHF's phase 2 must
// select the f heaviest subproblems.
//
// Usage: lbb_bench collective_costs
#include <iostream>
#include <vector>

#include "bench/experiment_registry.hpp"
#include "net/collectives.hpp"
#include "sim/cost_model.hpp"
#include "stats/table.hpp"

int lbb::bench::run_collective_costs(int /*argc*/, char** /*argv*/) {
  using namespace lbb;

  stats::TextTable table;
  table.set_header({"N", "model cost", "bcast", "reduce", "scan", "barrier",
                    "allreduce", "bitonic sort"});

  for (const int k : {5, 8, 11, 14, 17}) {
    const std::int64_t n = std::int64_t{1} << k;
    std::vector<double> v(static_cast<std::size_t>(n), 1.0);
    const auto bc = net::broadcast(v, 0);
    const auto rd = net::reduce_max(v);
    const auto sc = net::prefix_sum(v);
    const auto ba = net::barrier(static_cast<std::int32_t>(n));
    const auto ar = net::all_reduce_max(v);
    std::vector<net::KeyId> items(static_cast<std::size_t>(n));
    for (std::size_t i = 0; i < items.size(); ++i) {
      items[i] = net::KeyId{static_cast<double>((i * 2654435761u) % 1000),
                            static_cast<std::int32_t>(i)};
    }
    const auto bs = net::bitonic_sort_desc(items);

    sim::CostModel cm;
    table.add_row({stats::fmt_int(n),
                   stats::fmt(cm.collective_cost(static_cast<std::int32_t>(n)),
                              0),
                   stats::fmt_int(bc.rounds), stats::fmt_int(rd.rounds),
                   stats::fmt_int(sc.rounds), stats::fmt_int(ba.rounds),
                   stats::fmt_int(ar.rounds), stats::fmt_int(bs.rounds)});
  }

  std::cout << "Communication rounds of the message-level collectives vs "
               "the simulator's per-collective cost formula\n\n";
  table.print(std::cout);
  std::cout
      << "\nbroadcast/reduce/scan/barrier meet the ceil(log2 N) model "
         "exactly; all-reduce costs 2x; the bitonic selection/sorting\n"
         "fallback costs O(log^2 N) rounds -- the 'logarithmic slowdown' "
         "of simulating the PRAM that the paper acknowledges.\n";
  return 0;
}
