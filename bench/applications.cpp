// End-to-end substrate study (extension of the paper's Section 4): the
// algorithms applied to the application problem classes the paper motivates
// -- FE-trees from adaptive substructuring, adaptive quadrature regions,
// 2-D domain decomposition, and random-pivot lists -- next to the synthetic
// model.  For each class we report the empirically realized bisector
// quality (min alpha-hat seen) and the achieved ratios.
//
// Usage: applications [--n=64] [--trials=20]
#include <algorithm>
#include <iostream>
#include <memory>

#include "bench/bench_cli.hpp"
#include "bench/experiment_registry.hpp"
#include "core/lbb.hpp"
#include "problems/alpha_dist.hpp"
#include "problems/fe_tree.hpp"
#include "problems/grid_domain.hpp"
#include "problems/pivot_list.hpp"
#include "problems/quadrature.hpp"
#include "problems/synthetic.hpp"
#include "stats/histogram.hpp"
#include "stats/rng.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"

namespace {

using namespace lbb;

struct Row {
  std::string name;
  stats::RunningStats hf, ba, ba_hf;
  stats::RunningStats min_alpha;
  stats::Histogram alpha_hist{0.0, 0.5, 24};
};

// Partition with all algorithms, recording ratios and the worst alpha-hat
// realized anywhere in HF's bisection tree.
template <core::Bisectable P>
void measure(Row& row, const P& problem, std::int32_t n, double alpha_guess) {
  core::PartitionOptions opt;
  opt.record_tree = true;
  const auto hf = core::hf_partition(problem, n, opt);
  row.hf.add(hf.ratio());
  row.ba.add(core::ba_partition(problem, n).ratio());
  row.ba_hf.add(
      core::ba_hf_partition(problem, n,
                            core::BaHfParams{alpha_guess, 1.0})
          .ratio());
  double min_alpha = 0.5;
  for (std::size_t i = 0; i < hf.tree.size(); ++i) {
    const auto& node = hf.tree.node(static_cast<core::NodeId>(i));
    if (node.left == core::kNoNode) continue;
    const auto& light = hf.tree.node(node.right);
    const double alpha_hat = light.weight / node.weight;
    min_alpha = std::min(min_alpha, alpha_hat);
    row.alpha_hist.add(alpha_hat);
  }
  row.min_alpha.add(min_alpha);
}

}  // namespace

int lbb::bench::run_applications(int argc, char** argv) {
  const bench::Cli cli(argc, argv);
  const auto n = static_cast<std::int32_t>(cli.get_int("n", 64));
  const auto trials = static_cast<std::int32_t>(cli.get_int("trials", 20));

  std::cout << "Application substrates, N = " << n << ", " << trials
            << " instances each\n\n";

  std::vector<Row> rows;

  {
    Row row;
    row.name = "synthetic U[0.1,0.5]";
    for (std::int32_t t = 0; t < trials; ++t) {
      problems::SyntheticProblem p(
          stats::mix64(1, static_cast<std::uint64_t>(t)),
          problems::AlphaDistribution::uniform(0.1, 0.5));
      measure(row, p, n, 0.1);
    }
    rows.push_back(std::move(row));
  }
  {
    Row row;
    row.name = "FE-tree (graded mesh)";
    for (std::int32_t t = 0; t < trials; ++t) {
      const auto tree = problems::FeTree::adaptive_refinement(
          stats::mix64(2, static_cast<std::uint64_t>(t)), 40 * n,
          /*focus=*/2.5);
      measure(row, problems::FeTreeProblem(tree), n, 1.0 / 3.0);
    }
    rows.push_back(std::move(row));
  }
  {
    Row row;
    row.name = "quadrature (peaked)";
    for (std::int32_t t = 0; t < trials; ++t) {
      const double peak =
          0.1 + 0.8 * stats::hash_to_unit(stats::mix64(3, t));
      problems::Integrand f = [peak](std::span<const double> x) {
        const double d = x[0] - peak;
        return 1.0 / (d * d + 2e-4);
      };
      const double lo = 0.0;
      const double hi = 1.0;
      problems::QuadratureProblem p(
          std::move(f), problems::QuadratureConfig{1e-5, 40}, 1,
          std::span<const double>(&lo, 1), std::span<const double>(&hi, 1));
      measure(row, p, n, 0.05);
    }
    rows.push_back(std::move(row));
  }
  {
    Row row;
    row.name = "grid domain (hotspots)";
    for (std::int32_t t = 0; t < trials; ++t) {
      const auto field = std::make_shared<const problems::GridField>(
          problems::GridField::random_hotspots(
              stats::mix64(4, static_cast<std::uint64_t>(t)), 160, 160, 6));
      measure(row, problems::GridProblem(field), n, 1.0 / 3.0);
    }
    rows.push_back(std::move(row));
  }
  {
    Row row;
    row.name = "pivot list";
    for (std::int32_t t = 0; t < trials; ++t) {
      problems::PivotListProblem p(
          stats::mix64(5, static_cast<std::uint64_t>(t)), 200000);
      measure(row, p, n, 0.01);
    }
    rows.push_back(std::move(row));
  }

  stats::TextTable table;
  table.set_header({"substrate", "HF avg", "BA avg", "BA-HF avg",
                    "HF worst", "min alpha-hat", "alpha-hat dist (0..0.5)"});
  for (const Row& row : rows) {
    table.add_row({row.name, stats::fmt(row.hf.mean(), 3),
                   stats::fmt(row.ba.mean(), 3),
                   stats::fmt(row.ba_hf.mean(), 3),
                   stats::fmt(row.hf.max(), 3),
                   stats::fmt(row.min_alpha.min(), 3),
                   "|" + row.alpha_hist.sparkline() + "|"});
  }
  table.print(std::cout);
  std::cout << "\n'min alpha-hat' is the worst realized bisection fraction "
               "across all instances (the empirical bisector quality of the "
               "class).\n";
  return 0;
}
