// Validates the analytic bounds of Section 3.1 empirically:
//
//   * PHF's phase-2 iteration count vs the bound (1/alpha) ln(1/alpha);
//   * the phase-1 bisection-tree depth vs log_{1/(1-alpha)} N;
//   * the share of bisections done in the (cheap, asynchronous) phase 1
//     versus the (collective-heavy) phase 2.
//
// Usage: phf_iterations [--trials=N] [--n=4096]
#include <iostream>

#include "bench/bench_cli.hpp"
#include "bench/experiment_registry.hpp"
#include "core/bounds.hpp"
#include "problems/alpha_dist.hpp"
#include "problems/synthetic.hpp"
#include "sim/phf.hpp"
#include "stats/rng.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"

int lbb::bench::run_phf_iterations(int argc, char** argv) {
  using namespace lbb;

  const bench::Cli cli(argc, argv);
  const auto n = static_cast<std::int32_t>(cli.get_int("n", 4096));
  const auto trials = static_cast<std::int32_t>(cli.get_int("trials", 50));

  std::cout << "PHF phase structure, N = " << n << ", alpha-hat ~ "
            << "U[alpha, 0.5], " << trials << " trials per row\n\n";

  stats::TextTable table;
  table.set_header({"alpha", "p2 iters avg", "p2 iters max", "bound",
                    "p1 share avg", "tree depth max", "depth bound"});

  for (const double alpha : {0.05, 0.1, 0.15, 0.2, 0.25, 1.0 / 3.0, 0.45}) {
    stats::RunningStats iters;
    stats::RunningStats p1_share;
    stats::RunningStats depth;
    for (std::int32_t t = 0; t < trials; ++t) {
      problems::SyntheticProblem p(
          stats::mix64(33, static_cast<std::uint64_t>(t)),
          problems::AlphaDistribution::uniform(alpha, 0.5));
      const auto r = sim::phf_simulate(p, n, alpha);
      iters.add(r.metrics.phase2_iterations);
      p1_share.add(static_cast<double>(r.metrics.phase1_bisections) /
                   static_cast<double>(r.metrics.bisections));
      depth.add(r.partition.max_depth);
    }
    table.add_row({stats::fmt(alpha, 3), stats::fmt(iters.mean(), 1),
                   stats::fmt(iters.max(), 0),
                   stats::fmt_int(core::phase2_iteration_bound(alpha)),
                   stats::fmt(p1_share.mean(), 3),
                   stats::fmt(depth.max(), 0),
                   stats::fmt_int(core::phase1_depth_bound(alpha, n) +
                                  core::phase2_iteration_bound(alpha))});
  }
  table.print(std::cout);
  std::cout << "\n'p1 share' = fraction of all N-1 bisections already done "
               "in the asynchronous first phase.\n";
  return 0;
}
